"""The ``evolving`` workload: solve → delta → re-solve over graph versions.

Static benchmarks miss the regime the scale subsystem targets: a graph that
*changes* between solves.  This workload runs a timeline per suite graph —
an initial (cold) spectral solve, then ``steps`` batches of random edge
deltas (:class:`repro.scale.stream.EdgeStream`), each folded into a new
:class:`repro.scale.stream.GraphVersion` snapshot and re-solved *warm* from
the previous version's best cut
(:func:`repro.scale.stream.warm_resolve`).  Optionally every step also runs
a full cold solve on the same version, so the gated metric — the
``warm/cold`` cut-quality ratio — measures exactly what warm-starting gives
up (usually nothing) for a fraction of the solve time.

Everything follows the library's uniform workload contract: the timeline of
one (graph, trial) pair is one shard unit, deltas and solves derive their
randomness from the spec seed and the unit key (paired ``SeedSequence``
convention, never from which shard runs them), and the shard merge reuses
the monolithic aggregation — ``repro run evolving --shards N`` followed by
``repro merge`` is bit-identical to the monolithic run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple

from repro.experiments.runner import register_result_type
from repro.utils.rng import paired_seed
from repro.utils.validation import ValidationError
from repro.workloads.registry import Workload, register_workload
from repro.workloads.report import RunReport, WorkloadOutcome
from repro.workloads.spec import (
    Budget,
    ExecutionPolicy,
    GraphSource,
    WorkloadSpec,
)

__all__ = [
    "EvolvingRecord",
    "EVOLVING_SCHEMA",
    "evolving_units",
    "run_evolving_unit",
    "evolving_outcome",
]

#: Schema tag written into every saved evolving artifact's metadata.
EVOLVING_SCHEMA = "repro-evolving/v1"

#: Spawn-key tag isolating this workload's randomness from every other
#: consumer of the spec seed (solves use (tag, g, t, 0, step); the delta
#: stream uses (tag, g, t, 1)).
_EVOLVING_TAG = 9302


@register_result_type
@dataclass(frozen=True)
class EvolvingRecord:
    """One solved version of one evolving-graph timeline.

    Attributes
    ----------
    graph_name, trial, step:
        Timeline coordinates; step 0 is the initial graph (cold solve by
        definition, so ``warm_weight == cold_weight`` there).
    n_vertices, n_edges, fingerprint:
        The version's shape and content hash (fingerprints chain the
        timeline: replaying the same deltas reproduces them exactly).
    warm_weight, warm_seconds:
        Cut weight and wall time of the warm-started re-solve.
    cold_weight, cold_seconds:
        Full cold solve of the same version when ``compare_cold`` is on;
        mirrors the warm numbers otherwise.
    quality_ratio:
        ``warm_weight / cold_weight`` (1.0 when not compared).
    compared:
        Whether a genuine cold reference ran for this step.
    """

    graph_name: str
    trial: int
    step: int
    n_vertices: int
    n_edges: int
    fingerprint: str
    method: str
    warm_weight: float
    warm_seconds: float
    cold_weight: float
    cold_seconds: float
    quality_ratio: float
    compared: bool
    detail: Dict[str, Any] = field(default_factory=dict)


def _evolving_params(spec: WorkloadSpec) -> Dict[str, Any]:
    params = dict(spec.params)
    steps = int(params.get("steps", 3))
    deltas = int(params.get("deltas", 8))
    if steps < 0 or deltas < 0:
        raise ValidationError("steps and deltas must be non-negative")
    return {
        "steps": steps,
        "deltas": deltas,
        "method": str(params.get("method", "auto")),
        "warm": bool(params.get("warm", True)),
        "compare_cold": bool(params.get("compare_cold", True)),
    }


def evolving_units(spec: WorkloadSpec, n_shards: int = 1) -> List[Tuple[int, int]]:
    """One unit per (graph_index, trial) timeline, in canonical order."""
    from repro.workloads.executor import build_spec_graphs

    n_graphs = len(build_spec_graphs(spec))
    return [
        (g, t)
        for g in range(n_graphs)
        for t in range(spec.budget.n_trials)
    ]


def _cold_solve(graph, method: str, seed, max_flips: int):
    from repro.scale.stream import warm_resolve

    started = time.perf_counter()
    cut = warm_resolve(graph, method=method, seed=seed, max_flips=max_flips)
    return cut, time.perf_counter() - started


def run_evolving_unit(spec: WorkloadSpec, unit: Tuple[int, int]) -> Dict[str, Any]:
    """Run one (graph, trial) timeline and return its JSON-safe payload."""
    from repro.scale.stream import EdgeStream, GraphVersion, warm_resolve
    from repro.workloads.executor import build_spec_graphs

    g, t = int(unit[0]), int(unit[1])
    params = _evolving_params(spec)
    graph = build_spec_graphs(spec)[g]
    max_flips = int(spec.budget.n_samples)
    stream = EdgeStream.random(
        graph, params["steps"], params["deltas"],
        seed=paired_seed(spec.seed, _EVOLVING_TAG, g, t, 1),
    )

    records: List[Dict[str, Any]] = []
    version = GraphVersion.initial(graph)
    cut, elapsed = _cold_solve(
        version.graph, params["method"],
        paired_seed(spec.seed, _EVOLVING_TAG, g, t, 0, 0), max_flips,
    )
    records.append({
        "graph_name": graph.name, "trial": t, "step": 0,
        "n_vertices": int(version.graph.n_vertices),
        "n_edges": int(version.graph.n_edges),
        "fingerprint": version.fingerprint(),
        "method": params["method"],
        "warm_weight": float(cut.weight), "warm_seconds": float(elapsed),
        "cold_weight": float(cut.weight), "cold_seconds": float(elapsed),
        "quality_ratio": 1.0, "compared": False,
        "detail": {"parent_fingerprint": None},
    })
    previous = cut
    for step in range(1, params["steps"] + 1):
        version = version.apply(stream.step(step - 1))
        solve_seed = paired_seed(spec.seed, _EVOLVING_TAG, g, t, 0, step)
        if params["warm"]:
            started = time.perf_counter()
            warm_cut = warm_resolve(
                version.graph, previous=previous, max_flips=max_flips
            )
            warm_elapsed = time.perf_counter() - started
        else:
            warm_cut, warm_elapsed = _cold_solve(
                version.graph, params["method"], solve_seed, max_flips
            )
        if params["compare_cold"]:
            cold_cut, cold_elapsed = _cold_solve(
                version.graph, params["method"], solve_seed, max_flips
            )
            ratio = (
                warm_cut.weight / cold_cut.weight
                if cold_cut.weight > 0 else 1.0
            )
        else:
            cold_cut, cold_elapsed = warm_cut, warm_elapsed
            ratio = 1.0
        records.append({
            "graph_name": graph.name, "trial": t, "step": step,
            "n_vertices": int(version.graph.n_vertices),
            "n_edges": int(version.graph.n_edges),
            "fingerprint": version.fingerprint(),
            "method": params["method"],
            "warm_weight": float(warm_cut.weight),
            "warm_seconds": float(warm_elapsed),
            "cold_weight": float(cold_cut.weight),
            "cold_seconds": float(cold_elapsed),
            "quality_ratio": float(ratio),
            "compared": bool(params["compare_cold"]),
            "detail": {"parent_fingerprint": version.parent_fingerprint},
        })
        previous = warm_cut
    return {"graph_index": g, "trial": t, "records": records}


def _record_from_dict(payload: Dict[str, Any]) -> EvolvingRecord:
    return EvolvingRecord(
        graph_name=str(payload["graph_name"]),
        trial=int(payload["trial"]),
        step=int(payload["step"]),
        n_vertices=int(payload["n_vertices"]),
        n_edges=int(payload["n_edges"]),
        fingerprint=str(payload["fingerprint"]),
        method=str(payload["method"]),
        warm_weight=float(payload["warm_weight"]),
        warm_seconds=float(payload["warm_seconds"]),
        cold_weight=float(payload["cold_weight"]),
        cold_seconds=float(payload["cold_seconds"]),
        quality_ratio=float(payload["quality_ratio"]),
        compared=bool(payload["compared"]),
        detail=dict(payload.get("detail", {})),
    )


def evolving_outcome(
    payloads: Sequence[Dict[str, Any]], spec: WorkloadSpec
) -> WorkloadOutcome:
    """Fold unit payloads into the uniform outcome (shared with shard merges)."""
    ordered = sorted(payloads, key=lambda p: (int(p["graph_index"]), int(p["trial"])))
    records = [
        _record_from_dict(r) for payload in ordered for r in payload["records"]
    ]
    by_graph: Dict[str, List[EvolvingRecord]] = {}
    for record in records:
        by_graph.setdefault(record.graph_name, []).append(record)
    leaderboard = []
    for graph_name, rows in by_graph.items():
        compared = [r.quality_ratio for r in rows if r.compared]
        score = sum(compared) / len(compared) if compared else 1.0
        leaderboard.append({
            "solver": graph_name,
            "score": float(score),
            "metric": "warm/cold cut ratio",
            "steps": max(r.step for r in rows),
            "final_weight": float(
                max(rows, key=lambda r: (r.trial, r.step)).warm_weight
            ),
        })
    leaderboard.sort(key=lambda row: -row["score"])
    params = _evolving_params(spec)
    return WorkloadOutcome(
        records=records,
        leaderboard=leaderboard,
        metadata={
            "schema": EVOLVING_SCHEMA,
            "suite": spec.graphs.label,
            "n_trials": spec.budget.n_trials,
            "max_flips": spec.budget.n_samples,
            **params,
        },
    )


def _evolving_spec(params: Dict[str, Any]) -> WorkloadSpec:
    return WorkloadSpec(
        workload="evolving",
        graphs=GraphSource.coerce(params["suite"]),
        # Marker only: the custom executor drives warm_resolve directly, but
        # spec validation (rightly) insists on a non-empty solver tuple.
        solvers=("trevisan",),
        budget=Budget(
            n_trials=int(params["trials"]), n_samples=int(params["samples"])
        ),
        policy=ExecutionPolicy(mode="auto"),
        seed=params["seed"],
        params={**params, "suite": GraphSource.coerce(params["suite"]).label},
    )


def _evolving_execute(spec: WorkloadSpec) -> WorkloadOutcome:
    payloads = [
        run_evolving_unit(spec, unit) for unit in evolving_units(spec)
    ]
    return evolving_outcome(payloads, spec)


def _format_evolving(report: RunReport) -> str:
    from repro.experiments.reporting import format_table

    rows = [
        [
            record.graph_name,
            str(record.trial),
            str(record.step),
            str(record.n_edges),
            f"{record.warm_weight:.1f}",
            f"{record.warm_seconds:.3f}",
            f"{record.quality_ratio:.3f}" if record.compared else "-",
        ]
        for record in report.records
    ]
    return format_table(
        ["graph", "trial", "step", "edges", "warm cut", "warm s", "warm/cold"],
        rows,
    )


def _plot_evolving(report: RunReport) -> str:
    from repro.plotting.ascii import ascii_bar_chart

    return ascii_bar_chart(
        [row["solver"] for row in report.leaderboard],
        [max(0.0, float(row["score"])) for row in report.leaderboard],
        title="evolving warm/cold cut-quality ratio",
        value_format="{:.3f}",
    )


register_workload(Workload(
    name="evolving",
    summary="evolving-graph timelines: solve, apply edge deltas, re-solve warm",
    defaults={
        "suite": "scale-small", "steps": 3, "deltas": 8, "method": "auto",
        "warm": True, "compare_cold": True, "trials": 1, "samples": 64,
    },
    build_spec=_evolving_spec,
    execute=_evolving_execute,
    formatter=_format_evolving,
    plotter=_plot_evolving,
))
