"""Uniform run results: the :class:`RunReport` every workload returns.

Whatever the workload — a paper figure, the solver arena, an ad-hoc spec —
its :class:`repro.workloads.Session` returns one :class:`RunReport`: the
per-trial/per-record results, a ranked leaderboard, wall-clock timing, and a
JSON-safe metadata header.  Persistence goes through the standard experiment
layer (:func:`repro.experiments.runner.save_results`), so every report lands
in the same diffable JSON format as the historical per-experiment files:
``experiment`` is the workload name, ``results`` are the records, and
``config`` is the metadata header.

:class:`RunReport` registers itself with
:func:`repro.experiments.runner.register_result_type`, so reports can also be
nested inside other saved result lists.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.experiments.runner import register_result_type, save_results

__all__ = ["RunReport", "WorkloadOutcome"]


@dataclass(frozen=True)
class WorkloadOutcome:
    """What a workload executor hands back to the session.

    Attributes
    ----------
    records:
        Result objects (registered dataclass types, e.g. ``Figure3Cell`` or
        ``ArenaEntry``) — one per trial/cell/row, workload-defined.
    leaderboard:
        Ranked rows, best first.  Every row carries at least ``solver`` (the
        competitor label) and ``score`` (higher = better); workloads may add
        columns (``mean_ratio``, ``wins``, timing, ...).
    metadata:
        JSON-safe extras merged into the report header (resolved configs,
        suite/graph names, engine details, ...).
    """

    records: List[Any]
    leaderboard: List[Dict[str, Any]]
    metadata: Dict[str, Any] = field(default_factory=dict)


@register_result_type
@dataclass(frozen=True)
class RunReport:
    """Uniform result of one workload session.

    Attributes
    ----------
    workload:
        The workload name (persisted as the ``experiment`` field).
    seed:
        The resolved root seed of the run (never ``None`` — sessions draw
        fresh entropy up front so the run is reproducible after the fact).
    params:
        The resolved workload parameters, JSON-safe.
    records:
        Per-trial / per-cell result objects (see :class:`WorkloadOutcome`).
    leaderboard:
        Ranked rows, best first (``solver`` + ``score`` at minimum).
    elapsed_seconds:
        Wall-clock time of the whole session.
    metadata:
        JSON-safe extras from the executor (resolved configs, graph names,
        engine details, ...).
    version:
        Library version that produced the report.
    """

    workload: str
    seed: Optional[int]
    params: Dict[str, Any]
    records: List[Any]
    leaderboard: List[Dict[str, Any]]
    elapsed_seconds: float
    metadata: Dict[str, Any] = field(default_factory=dict)
    version: str = ""

    def winner(self) -> Optional[str]:
        """Top leaderboard competitor (None for empty leaderboards)."""
        if not self.leaderboard:
            return None
        return str(self.leaderboard[0].get("solver"))

    def header(self) -> Dict[str, Any]:
        """The metadata header persisted as the saved file's ``config``.

        Workload parameters are flattened to the top level (so e.g. a saved
        arena run has ``config["suite"]``, exactly like the historical
        format), with the reserved keys on top.
        """
        return {
            **self.params,
            "workload": self.workload,
            "seed": self.seed,
            "leaderboard": self.leaderboard,
            "elapsed_seconds": self.elapsed_seconds,
            "metadata": self.metadata,
        }

    def save(self, path) -> Any:
        """Persist through :func:`repro.experiments.runner.save_results`."""
        return save_results(path, self.workload, self.records, config=self.header())

    def record_dicts(self) -> List[Dict[str, Any]]:
        """Records as plain dictionaries (dataclasses converted shallowly)."""
        out = []
        for record in self.records:
            if dataclasses.is_dataclass(record) and not isinstance(record, type):
                out.append(
                    {
                        f.name: getattr(record, f.name)
                        for f in dataclasses.fields(record)
                    }
                )
            else:
                out.append(dict(record))
        return out
