"""Unified Workload API: one declarative spec + session runner for every run.

This package is the single stable surface behind every experiment, arena
race, and engine solve:

* :class:`WorkloadSpec` declares a run — graph source (:class:`GraphSource`),
  solver set (capability-aware registry keys), shared :class:`Budget`, and
  :class:`ExecutionPolicy` (engine-batched / process-parallel / sequential);
* :class:`Session` validates, plans, executes, and returns a uniform
  :class:`RunReport` (per-trial records, leaderboard, timing, metadata
  header) persisted through :func:`repro.experiments.runner.save_results`;
* :func:`register_workload` / :func:`list_workloads` make named workloads
  discoverable from Python and the generic ``repro run <name>`` CLI.

The five paper workloads — ``figure3``, ``figure4``, ``table1``,
``ablation``, ``arena`` — are registered on import (see
:mod:`repro.workloads.paper`); a new scenario is typically a ~30-line
``build_spec`` rather than a new module and CLI subcommand.

Quickstart
----------
>>> from repro.workloads import list_workloads, run_workload
>>> "figure3" in list_workloads()
True
>>> report = run_workload("arena", solvers=("random", "trevisan"),
...                       suite="er-small", trials=2, samples=16, seed=0)
>>> len(report.records) > 0
True
"""

from repro.workloads.spec import (
    Budget,
    ExecutionPolicy,
    GraphSource,
    WorkloadSpec,
)
from repro.workloads.report import RunReport, WorkloadOutcome
from repro.workloads.registry import (
    Workload,
    get_workload,
    list_workloads,
    register_workload,
)
from repro.workloads.session import PlanStep, RunPlan, Session, run_workload
from repro.workloads.executor import execute_spec
from repro.workloads import paper as _paper  # registers the five paper workloads
from repro.workloads import bench as _bench  # registers the bench workload
from repro.workloads import problems as _problems  # registers the problems workload
from repro.workloads import evolving as _evolving  # registers the evolving workload
from repro import portfolio as _portfolio  # registers the portfolio meta-solver
from repro.workloads.bench import BenchRecord, check_baseline
from repro.workloads.paper import arena_result_from_report


def __getattr__(name):
    # ProblemSource joins GraphSource as a spec-level source, but it lives in
    # repro.problems (which imports repro.workloads.spec) — resolving it
    # lazily keeps the package importable from either direction.
    if name == "ProblemSource":
        from repro.problems.source import ProblemSource

        return ProblemSource
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Budget",
    "ExecutionPolicy",
    "GraphSource",
    "ProblemSource",
    "WorkloadSpec",
    "RunReport",
    "WorkloadOutcome",
    "Workload",
    "register_workload",
    "get_workload",
    "list_workloads",
    "Session",
    "RunPlan",
    "PlanStep",
    "run_workload",
    "execute_spec",
    "arena_result_from_report",
    "BenchRecord",
    "check_baseline",
]
