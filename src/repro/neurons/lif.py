"""Vectorised leaky integrate-and-fire (LIF) neuron population (paper §III.B).

Between spikes the membrane potential of neuron i obeys

    C dV_i/dt = -V_i / R + sum_alpha W_{i alpha} s_alpha,

integrated with forward Euler at time step ``dt``.  When ``V_i`` crosses the
threshold the neuron emits a spike and the potential resets.  The population
is simulated as a whole: one matrix-vector product per time step, no Python
loop over neurons, following the vectorisation guidance for HPC Python.

Two readouts matter for the MAXCUT circuits:

* the **spike raster** (LIF-GW maps spiking/silent neurons to the two sides
  of the cut), and
* the **membrane potentials** (whose covariance is the engineered Gaussian
  process; the LIF-TR plasticity rule consumes them, and a sign readout of
  the membranes provides an equivalent rounding signal).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.utils.validation import ValidationError, check_positive

__all__ = ["LIFParameters", "LIFState", "LIFPopulation"]


@dataclass(frozen=True)
class LIFParameters:
    """Electrical parameters of a LIF neuron population.

    Attributes
    ----------
    capacitance:
        Membrane capacitance ``C`` (arbitrary units).
    resistance:
        Leak resistance ``R``.
    threshold:
        Spiking threshold on the membrane potential.
    reset_potential:
        Potential the membrane is reset to after a spike.
    dt:
        Euler integration time step.
    input_offset:
        Constant subtracted from every device state before weighting.  With
        fair-coin devices, ``input_offset = 0.5`` centres the input so the
        membrane fluctuates symmetrically around zero, which makes the sign /
        threshold readout an unbiased rounding operation.
    """

    capacitance: float = 1.0
    resistance: float = 10.0
    threshold: float = 1.0
    reset_potential: float = 0.0
    dt: float = 0.1
    input_offset: float = 0.5

    def __post_init__(self) -> None:
        check_positive(self.capacitance, "capacitance")
        check_positive(self.resistance, "resistance")
        check_positive(self.dt, "dt")
        if not np.isfinite(self.threshold):
            raise ValidationError("threshold must be finite")
        if not np.isfinite(self.reset_potential):
            raise ValidationError("reset_potential must be finite")
        tau = self.resistance * self.capacitance
        if self.dt >= 2.0 * tau:
            raise ValidationError(
                f"dt={self.dt} is too large for membrane time constant tau={tau}; "
                "forward Euler requires dt < 2*R*C for stability"
            )

    @property
    def time_constant(self) -> float:
        """Membrane time constant ``tau = R C``."""
        return self.resistance * self.capacitance

    @property
    def leak_factor(self) -> float:
        """Per-step decay multiplier ``1 - dt / (R C)`` of the Euler scheme."""
        return 1.0 - self.dt / self.time_constant


@dataclass
class LIFState:
    """Mutable state of a LIF population: membrane potentials and last spikes."""

    potentials: np.ndarray
    spikes: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=bool))

    @property
    def n_neurons(self) -> int:
        return int(self.potentials.shape[0])


class LIFPopulation:
    """A population of LIF neurons driven by a weighted pool of binary devices.

    Parameters
    ----------
    weights:
        ``(n_neurons, n_devices)`` synaptic weight matrix from devices to
        neurons (``W`` in the paper).
    params:
        Electrical parameters shared by all neurons.
    """

    def __init__(self, weights: np.ndarray, params: Optional[LIFParameters] = None) -> None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 2:
            raise ValidationError(f"weights must be 2-D, got shape {weights.shape}")
        if not np.all(np.isfinite(weights)):
            raise ValidationError("weights must be finite")
        self._weights = weights
        self.params = params or LIFParameters()
        self._state = LIFState(
            potentials=np.zeros(weights.shape[0], dtype=np.float64),
            spikes=np.zeros(weights.shape[0], dtype=bool),
        )

    # ------------------------------------------------------------------
    @property
    def n_neurons(self) -> int:
        return int(self._weights.shape[0])

    @property
    def n_devices(self) -> int:
        return int(self._weights.shape[1])

    @property
    def weights(self) -> np.ndarray:
        """Copy of the device-to-neuron weight matrix."""
        return self._weights.copy()

    @property
    def state(self) -> LIFState:
        """Current mutable state (potentials and last-step spike mask)."""
        return self._state

    def reset(self) -> None:
        """Reset all membrane potentials and spike flags to zero."""
        self._state.potentials[:] = 0.0
        self._state.spikes[:] = False

    # ------------------------------------------------------------------
    def theoretical_covariance(self, device_covariance: Optional[np.ndarray] = None) -> np.ndarray:
        """Stationary membrane covariance ``(R/C) W Sigma_s W^T`` (paper §III.C).

        Parameters
        ----------
        device_covariance:
            Covariance matrix of the device states; defaults to the
            independent fair-coin value ``0.25 I``.
        """
        r = self.n_devices
        if device_covariance is None:
            device_covariance = 0.25 * np.eye(r)
        device_covariance = np.asarray(device_covariance, dtype=np.float64)
        if device_covariance.shape != (r, r):
            raise ValidationError(
                f"device_covariance must have shape ({r}, {r}), got {device_covariance.shape}"
            )
        scale = self.params.resistance / self.params.capacitance
        return scale * (self._weights @ device_covariance @ self._weights.T)

    # ------------------------------------------------------------------
    def step(self, device_states: np.ndarray) -> np.ndarray:
        """Advance the population one Euler step given the device states.

        Parameters
        ----------
        device_states:
            Length-``n_devices`` array of 0/1 device states for this step.

        Returns
        -------
        numpy.ndarray
            Boolean spike mask for this step.
        """
        device_states = np.asarray(device_states)
        if device_states.shape != (self.n_devices,):
            raise ValidationError(
                f"device_states must have shape ({self.n_devices},), got {device_states.shape}"
            )
        potentials, spikes = self._integrate(
            self._state.potentials, device_states.astype(np.float64)[None, :]
        )
        self._state.potentials = potentials
        self._state.spikes = spikes[0]
        return spikes[0]

    def run(
        self,
        device_states: np.ndarray,
        record_potentials: bool = False,
        burn_in: int = 0,
    ) -> dict:
        """Run the population over a block of device samples.

        Parameters
        ----------
        device_states:
            ``(n_steps, n_devices)`` array of 0/1 device states.
        record_potentials:
            If True, the returned dictionary includes the ``(n_steps, n_neurons)``
            membrane trajectory (memory scales with both dimensions).
        burn_in:
            Number of leading steps whose spikes/potentials are integrated but
            not recorded, letting the membrane reach stationarity first.

        Returns
        -------
        dict with keys ``"spikes"`` (bool array, recorded steps x neurons) and,
        when requested, ``"potentials"``.
        """
        device_states = np.asarray(device_states)
        if device_states.ndim != 2 or device_states.shape[1] != self.n_devices:
            raise ValidationError(
                f"device_states must have shape (n_steps, {self.n_devices}), "
                f"got {device_states.shape}"
            )
        if burn_in < 0:
            raise ValidationError(f"burn_in must be non-negative, got {burn_in}")
        drive = device_states.astype(np.float64)

        if burn_in:
            head = drive[:burn_in]
            potentials, _ = self._integrate(self._state.potentials, head, record=False)
            self._state.potentials = potentials
            drive = drive[burn_in:]

        potentials, spikes, trajectory = self._integrate_recorded(
            self._state.potentials, drive, record_potentials
        )
        self._state.potentials = potentials
        self._state.spikes = spikes[-1] if spikes.shape[0] else self._state.spikes
        result: dict = {"spikes": spikes}
        if record_potentials:
            result["potentials"] = trajectory
        return result

    # ------------------------------------------------------------------
    def _drive_current(self, device_block: np.ndarray) -> np.ndarray:
        """Synaptic current for a block of device states: ``(s - offset) W^T``."""
        centred = device_block - self.params.input_offset
        return centred @ self._weights.T

    def _integrate(
        self, initial: np.ndarray, device_block: np.ndarray, record: bool = True
    ) -> tuple[np.ndarray, np.ndarray]:
        """Integrate without storing the potential trajectory."""
        params = self.params
        leak = params.leak_factor
        gain = params.dt / params.capacitance
        currents = self._drive_current(device_block)
        potentials = initial.copy()
        spikes = np.zeros((device_block.shape[0] if record else 0, self.n_neurons), dtype=bool)
        for t in range(device_block.shape[0]):
            potentials = leak * potentials + gain * currents[t]
            fired = potentials >= params.threshold
            if record:
                spikes[t] = fired
            if np.any(fired):
                potentials[fired] = params.reset_potential
        return potentials, spikes

    def _integrate_recorded(
        self, initial: np.ndarray, device_block: np.ndarray, record_potentials: bool
    ) -> tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
        """Integrate while recording spikes (and optionally potentials)."""
        params = self.params
        leak = params.leak_factor
        gain = params.dt / params.capacitance
        currents = self._drive_current(device_block)
        n_steps = device_block.shape[0]
        potentials = initial.copy()
        spikes = np.zeros((n_steps, self.n_neurons), dtype=bool)
        trajectory = np.zeros((n_steps, self.n_neurons)) if record_potentials else None
        for t in range(n_steps):
            potentials = leak * potentials + gain * currents[t]
            if record_potentials:
                trajectory[t] = potentials
            fired = potentials >= params.threshold
            spikes[t] = fired
            if np.any(fired):
                potentials[fired] = params.reset_potential
        return potentials, spikes, trajectory

    def run_subthreshold(
        self, device_states: np.ndarray, burn_in: int = 0
    ) -> np.ndarray:
        """Integrate with spiking disabled and return the membrane trajectory.

        Used by the LIF-TR circuit and the covariance validation tests: the
        plasticity rule consumes the free (non-resetting) membrane potentials,
        whose covariance is the engineered quantity of §III.C.
        """
        device_states = np.asarray(device_states)
        if device_states.ndim != 2 or device_states.shape[1] != self.n_devices:
            raise ValidationError(
                f"device_states must have shape (n_steps, {self.n_devices}), "
                f"got {device_states.shape}"
            )
        if burn_in < 0:
            raise ValidationError(f"burn_in must be non-negative, got {burn_in}")
        params = self.params
        leak = params.leak_factor
        gain = params.dt / params.capacitance
        currents = self._drive_current(device_states.astype(np.float64))
        n_steps = device_states.shape[0]
        potentials = self._state.potentials.copy()
        recorded = max(0, n_steps - burn_in)
        trajectory = np.zeros((recorded, self.n_neurons))
        for t in range(n_steps):
            potentials = leak * potentials + gain * currents[t]
            if t >= burn_in:
                trajectory[t - burn_in] = potentials
        self._state.potentials = potentials
        return trajectory

    def __repr__(self) -> str:  # pragma: no cover - repr formatting
        return (
            f"LIFPopulation(n_neurons={self.n_neurons}, n_devices={self.n_devices}, "
            f"tau={self.params.time_constant:g})"
        )
