"""Membrane-covariance theory and estimators (paper §III.C).

The central circuit motif: a population of LIF neurons integrating weighted
binary device states has (stationary, subthreshold) membrane covariance

    Cov(V_i, V_j) = (R / C) * sum_{alpha beta} W_{i alpha} W_{j beta} Cov(s_alpha, s_beta),

i.e. a linear transformation of the device covariance by the weight matrix.
With independent fair coins, ``Cov(s) = 0.25 I`` and the membrane covariance
is proportional to the Gram matrix ``W W^T`` — exactly the quantity the
Goemans-Williamson rounding step needs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.utils.validation import ValidationError, check_symmetric

__all__ = [
    "covariance_from_weights",
    "theoretical_membrane_covariance",
    "empirical_covariance",
    "correlation_from_covariance",
]


def covariance_from_weights(
    weights: np.ndarray,
    device_covariance: Optional[np.ndarray] = None,
    gain: float = 1.0,
) -> np.ndarray:
    """Membrane covariance implied by a device-to-neuron weight matrix.

    Parameters
    ----------
    weights:
        ``(n, r)`` weight matrix ``W``.
    device_covariance:
        ``(r, r)`` device-state covariance; defaults to the fair-coin value
        ``0.25 I``.
    gain:
        The multiplicative factor ``R / C`` (or any overall scale).

    Returns
    -------
    ``(n, n)`` symmetric PSD matrix ``gain * W Sigma_s W^T``.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 2:
        raise ValidationError(f"weights must be 2-D, got shape {weights.shape}")
    r = weights.shape[1]
    if device_covariance is None:
        device_covariance = 0.25 * np.eye(r)
    device_covariance = check_symmetric(
        np.asarray(device_covariance, dtype=np.float64), "device_covariance"
    )
    if device_covariance.shape != (r, r):
        raise ValidationError(
            f"device_covariance must have shape ({r}, {r}), got {device_covariance.shape}"
        )
    covariance = gain * (weights @ device_covariance @ weights.T)
    # Symmetrise to remove floating-point asymmetry before downstream eigensolves.
    return 0.5 * (covariance + covariance.T)


def theoretical_membrane_covariance(
    weights: np.ndarray,
    resistance: float = 10.0,
    capacitance: float = 1.0,
    device_covariance: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Paper §III.C formula ``Cov(V) = (R/C) W Cov(s) W^T``."""
    if resistance <= 0 or capacitance <= 0:
        raise ValidationError("resistance and capacitance must be positive")
    return covariance_from_weights(
        weights, device_covariance=device_covariance, gain=resistance / capacitance
    )


def empirical_covariance(samples: np.ndarray, ddof: int = 1) -> np.ndarray:
    """Empirical covariance of row-wise samples ``(n_samples, n_variables)``.

    A thin wrapper around :func:`numpy.cov` that always returns a 2-D matrix
    (including the 1-variable case) and validates the sample count.
    """
    samples = np.asarray(samples, dtype=np.float64)
    if samples.ndim != 2:
        raise ValidationError(f"samples must be 2-D, got shape {samples.shape}")
    if samples.shape[0] <= ddof:
        raise ValidationError(
            f"need more than {ddof} samples to estimate covariance, got {samples.shape[0]}"
        )
    covariance = np.cov(samples, rowvar=False, ddof=ddof)
    return np.atleast_2d(covariance)


def correlation_from_covariance(covariance: np.ndarray) -> np.ndarray:
    """Convert a covariance matrix to a correlation matrix.

    Zero-variance entries produce zero correlation rows/columns (rather than
    NaN), with ones kept on the diagonal.
    """
    covariance = check_symmetric(np.asarray(covariance, dtype=np.float64), "covariance")
    std = np.sqrt(np.clip(np.diag(covariance), 0.0, None))
    n = covariance.shape[0]
    correlation = np.zeros_like(covariance)
    nonzero = std > 0
    if np.any(nonzero):
        outer = np.outer(std[nonzero], std[nonzero])
        correlation[np.ix_(nonzero, nonzero)] = covariance[np.ix_(nonzero, nonzero)] / outer
    np.fill_diagonal(correlation, 1.0)
    return correlation
