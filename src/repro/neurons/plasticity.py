"""Synaptic plasticity rules (paper §III.D).

Three rules are implemented:

* plain **Hebbian** updates ``dw = eta * y * x`` (unstable; included for the
  comparison in the paper's exposition),
* **Oja's rule** ``dw = eta * y * (x - y w)``, which converges to the
  principal (largest-eigenvalue) eigenvector of the input covariance, and
* **Oja's anti-Hebbian / minor-component rule**
  ``dw = eta * ( -y x + (y^2 + 1 - w^T w) w )``, which converges to the
  eigenvector of the *smallest* eigenvalue — the rule that drives the
  LIF-Trevisan circuit.

Each rule is provided both as a pure update function (for property tests) and
as a small stateful learner class used by the circuits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import ValidationError, check_positive

__all__ = [
    "hebbian_update",
    "oja_update",
    "anti_hebbian_oja_update",
    "OjaPrincipalComponent",
    "AntiHebbianMinorComponent",
]


def _check_pair(w: np.ndarray, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    w = np.asarray(w, dtype=np.float64)
    x = np.asarray(x, dtype=np.float64)
    if w.ndim != 1 or x.ndim != 1 or w.shape != x.shape:
        raise ValidationError(
            f"w and x must be 1-D arrays of equal length, got {w.shape} and {x.shape}"
        )
    return w, x


def hebbian_update(w: np.ndarray, x: np.ndarray, learning_rate: float = 0.01) -> np.ndarray:
    """Plain Hebbian update ``w + eta * y * x`` with ``y = w . x`` (unstable)."""
    w, x = _check_pair(w, x)
    check_positive(learning_rate, "learning_rate")
    y = float(w @ x)
    return w + learning_rate * y * x


def oja_update(w: np.ndarray, x: np.ndarray, learning_rate: float = 0.01) -> np.ndarray:
    """Oja principal-component update ``w + eta * y * (x - y w)``."""
    w, x = _check_pair(w, x)
    check_positive(learning_rate, "learning_rate")
    y = float(w @ x)
    return w + learning_rate * y * (x - y * w)


def anti_hebbian_oja_update(
    w: np.ndarray, x: np.ndarray, learning_rate: float = 0.01
) -> np.ndarray:
    """Oja minor-component (anti-Hebbian) update (paper §III.D).

    ``dw = eta * ( -y x + (y^2 + 1 - w^T w) w )`` with ``y = w . x``.
    The ``(1 - w^T w)`` term stabilises the weight norm near 1 while the
    ``-y x`` term pushes *w* away from high-variance directions, so the fixed
    point is the minimum-eigenvalue eigenvector of ``Cov(x)``.
    """
    w, x = _check_pair(w, x)
    check_positive(learning_rate, "learning_rate")
    y = float(w @ x)
    return w + learning_rate * (-y * x + (y * y + 1.0 - float(w @ w)) * w)


@dataclass
class OjaPrincipalComponent:
    """Stateful Oja learner converging to the principal eigenvector of its input."""

    n_inputs: int
    learning_rate: float = 0.01
    seed: RandomState = None
    weights: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        if self.n_inputs < 1:
            raise ValidationError(f"n_inputs must be >= 1, got {self.n_inputs}")
        check_positive(self.learning_rate, "learning_rate")
        rng = as_generator(self.seed)
        w = rng.standard_normal(self.n_inputs)
        self.weights = w / np.linalg.norm(w)

    def step(self, x: np.ndarray, learning_rate: Optional[float] = None) -> float:
        """Apply one Oja update for input *x*; returns the output ``y = w . x``."""
        eta = self.learning_rate if learning_rate is None else learning_rate
        y = float(self.weights @ np.asarray(x, dtype=np.float64))
        self.weights = oja_update(self.weights, x, eta)
        return y

    def train(self, inputs: np.ndarray, learning_rate: Optional[float] = None) -> np.ndarray:
        """Apply Oja updates over the rows of *inputs*; returns the outputs."""
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim != 2 or inputs.shape[1] != self.n_inputs:
            raise ValidationError(
                f"inputs must have shape (n_steps, {self.n_inputs}), got {inputs.shape}"
            )
        outputs = np.empty(inputs.shape[0])
        for t in range(inputs.shape[0]):
            outputs[t] = self.step(inputs[t], learning_rate)
        return outputs


@dataclass
class AntiHebbianMinorComponent:
    """Stateful anti-Hebbian Oja learner converging to the minor eigenvector.

    This is the learning element of the LIF-Trevisan circuit: the input ``x``
    is the vector of LIF membrane potentials, and the converged weight vector
    is the minimum eigenvector of their covariance.  ``sign(weights)`` is the
    circuit's MAXCUT solution.

    Parameters
    ----------
    n_inputs:
        Input dimension (one per LIF neuron / graph vertex).
    learning_rate:
        Base learning rate ``eta``.
    learning_rate_decay:
        Optional multiplicative decay applied as ``eta / (1 + decay * t)``;
        0 disables the schedule.
    normalize_inputs:
        If True, each input vector is scaled to unit RMS before the update,
        which makes the effective learning rate independent of the membrane
        variance scale (and hence of R/C and the weight magnitudes).
    """

    n_inputs: int
    learning_rate: float = 0.01
    learning_rate_decay: float = 0.0
    normalize_inputs: bool = True
    seed: RandomState = None
    weights: np.ndarray = field(init=False)
    n_updates: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.n_inputs < 1:
            raise ValidationError(f"n_inputs must be >= 1, got {self.n_inputs}")
        check_positive(self.learning_rate, "learning_rate")
        if self.learning_rate_decay < 0:
            raise ValidationError("learning_rate_decay must be non-negative")
        rng = as_generator(self.seed)
        w = rng.standard_normal(self.n_inputs)
        self.weights = w / np.linalg.norm(w)

    def current_learning_rate(self) -> float:
        """Learning rate after the decay schedule at the current update count."""
        return self.learning_rate / (1.0 + self.learning_rate_decay * self.n_updates)

    def step(self, x: np.ndarray) -> float:
        """Apply one anti-Hebbian update for input *x*; returns ``y = w . x``."""
        x = np.asarray(x, dtype=np.float64)
        if self.normalize_inputs:
            rms = float(np.sqrt(np.mean(x * x)))
            if rms > 1e-12:
                x = x / rms
        eta = self.current_learning_rate()
        y = float(self.weights @ x)
        self.weights = anti_hebbian_oja_update(self.weights, x, eta)
        # Guard against numerical blow-up: the rule is stable for small eta,
        # but a hard renormalisation above norm 10 keeps pathological settings
        # (huge eta) from overflowing without affecting normal operation.
        norm = float(np.linalg.norm(self.weights))
        if norm > 10.0:
            self.weights /= norm
        self.n_updates += 1
        return y

    def train(self, inputs: np.ndarray) -> np.ndarray:
        """Apply anti-Hebbian updates over the rows of *inputs*; returns outputs."""
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim != 2 or inputs.shape[1] != self.n_inputs:
            raise ValidationError(
                f"inputs must have shape (n_steps, {self.n_inputs}), got {inputs.shape}"
            )
        outputs = np.empty(inputs.shape[0])
        for t in range(inputs.shape[0]):
            outputs[t] = self.step(inputs[t])
        return outputs

    def sign_assignment(self) -> np.ndarray:
        """±1 MAXCUT assignment from the sign of the weight vector (zeros map to -1)."""
        return np.where(self.weights > 0.0, 1, -1).astype(np.int8)
