"""Neuron substrate: LIF dynamics, membrane covariance theory, synaptic plasticity."""

from repro.neurons.lif import LIFParameters, LIFPopulation, LIFState
from repro.neurons.covariance import (
    theoretical_membrane_covariance,
    empirical_covariance,
    covariance_from_weights,
)
from repro.neurons.plasticity import (
    hebbian_update,
    oja_update,
    anti_hebbian_oja_update,
    OjaPrincipalComponent,
    AntiHebbianMinorComponent,
)
from repro.neurons.encoding import spikes_to_assignments, membrane_sign_assignments

__all__ = [
    "LIFParameters",
    "LIFPopulation",
    "LIFState",
    "theoretical_membrane_covariance",
    "empirical_covariance",
    "covariance_from_weights",
    "hebbian_update",
    "oja_update",
    "anti_hebbian_oja_update",
    "OjaPrincipalComponent",
    "AntiHebbianMinorComponent",
    "spikes_to_assignments",
    "membrane_sign_assignments",
]
