"""Mapping neural activity to MAXCUT assignments (paper §IV.A).

The LIF-GW circuit reads out a cut per time step: *neurons that spike together
on a given timestep map to vertices on one side of the cut, and neurons that
are silent map to the other side*.  An equivalent readout thresholds the
membrane potential at zero (the Bertsimas-Ye Gaussian rounding); both are
provided so the circuits and tests can cross-validate them.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import ValidationError

__all__ = [
    "spikes_to_assignments",
    "membrane_sign_assignments",
    "spikes_to_assignments_xp",
    "membrane_sign_assignments_xp",
]


def spikes_to_assignments(spikes: np.ndarray) -> np.ndarray:
    """Map a boolean spike raster to ±1 cut assignments.

    Parameters
    ----------
    spikes:
        ``(n_steps, n_neurons)`` boolean array; entry ``[t, i]`` is True when
        neuron i spiked at step t.

    Returns
    -------
    ``(n_steps, n_neurons)`` int8 array with +1 for spiking neurons and -1
    for silent neurons.
    """
    spikes = np.asarray(spikes)
    if spikes.ndim != 2:
        raise ValidationError(f"spikes must be 2-D, got shape {spikes.shape}")
    return np.where(spikes.astype(bool), 1, -1).astype(np.int8)


def membrane_sign_assignments(potentials: np.ndarray, threshold: float = 0.0) -> np.ndarray:
    """Map membrane potentials to ±1 assignments by thresholding.

    Parameters
    ----------
    potentials:
        ``(n_steps, n_neurons)`` membrane trajectory.
    threshold:
        Rounding threshold; the default 0 corresponds to the Gaussian rounding
        of centred membranes.
    """
    potentials = np.asarray(potentials, dtype=np.float64)
    if potentials.ndim != 2:
        raise ValidationError(f"potentials must be 2-D, got shape {potentials.shape}")
    if not np.isfinite(threshold):
        raise ValidationError("threshold must be finite")
    return np.where(potentials > threshold, 1, -1).astype(np.int8)


def spikes_to_assignments_xp(xp, spikes):
    """Array-namespace variant of :func:`spikes_to_assignments`.

    *spikes* is a boolean array in *xp*'s namespace
    (:class:`repro.engine.xp.ArrayBackend`); no validation, the batched
    engine guarantees a 2-D mask.  On the numpy backend every call lowers to
    the exact expression of the host function, so results stay bitwise
    equal.
    """
    return xp.astype(xp.where(spikes, 1, -1), "int8")


def membrane_sign_assignments_xp(xp, potentials, threshold: float = 0.0):
    """Array-namespace variant of :func:`membrane_sign_assignments`.

    Same contract as :func:`spikes_to_assignments_xp`: unvalidated, bitwise
    equal to the host function on the numpy backend.
    """
    return xp.astype(xp.where(potentials > threshold, 1, -1), "int8")
