"""repro — reproduction of "Stochastic Neuromorphic Circuits for Solving MAXCUT".

The library implements, in pure NumPy/SciPy:

* the two neuromorphic circuits of the paper (:class:`repro.LIFGWCircuit` and
  :class:`repro.LIFTrevisanCircuit`),
* every substrate they rely on — stochastic device pools, LIF neuron
  populations, Oja/anti-Hebbian plasticity, a Burer-Monteiro SDP solver,
  spectral solvers, graph generators and the empirical-graph registry,
* the software baselines (Goemans-Williamson, Trevisan simple spectral,
  random cuts), and
* the experiment harness regenerating the paper's Figure 3, Figure 4 and
  Table I, plus the ablations its Discussion calls for,
* a capability-aware solver registry with a cross-method comparison arena
  (:mod:`repro.arena`) racing circuits against the classical baselines over
  named graph suites under a shared budget, and
* the **unified workload API** (:mod:`repro.workloads`, ``python -m repro
  run <workload>``): one declarative :class:`WorkloadSpec` + :class:`Session`
  runner behind every experiment, arena race, and engine solve, returning a
  uniform :class:`RunReport`, and
* the **problem compiler** (:mod:`repro.problems`, ``repro solve --problem``,
  ``repro run problems``): a QUBO/Ising/MAXDICUT/MAX2SAT IR lowered onto the
  MAXCUT solver stack by certified gadget reductions, with problem suites and
  problem-native solvers racing on the arena leaderboard.

Quickstart
----------
>>> import repro
>>> graph = repro.erdos_renyi(40, 0.3, seed=1)
>>> circuit = repro.LIFGWCircuit(graph, seed=1)
>>> result = circuit.sample_cuts(n_samples=200, seed=2)
>>> result.best_weight > 0
True
"""

from repro.graphs import (
    Graph,
    erdos_renyi,
    complete_graph,
    complete_bipartite,
    cycle_graph,
    load_empirical_graph,
    list_empirical_graphs,
)
from repro.cuts import (
    Cut,
    cut_weight,
    cut_weights_batch,
    random_cut,
    best_random_cut,
    exact_maxcut,
    exact_maxcut_value,
)
from repro.sdp import solve_maxcut_sdp, hyperplane_rounding, SDPResult
from repro.spectral import trevisan_simple_spectral, minimum_eigenvector
from repro.devices import (
    FairCoinPool,
    BiasedCoinPool,
    CorrelatedDevicePool,
    DriftingDevicePool,
    TelegraphNoisePool,
)
from repro.neurons import (
    LIFParameters,
    LIFPopulation,
    AntiHebbianMinorComponent,
    OjaPrincipalComponent,
)
from repro.circuits import (
    LIFGWCircuit,
    LIFTrevisanCircuit,
    LIFGWConfig,
    LIFTrevisanConfig,
    CircuitResult,
)
from repro.engine import (
    BatchedSolverEngine,
    EarlyStopConfig,
    SolveRequest,
    SolveResult,
    sequential_solve,
)
from repro.algorithms import (
    goemans_williamson,
    trevisan_spectral,
    random_baseline,
    SolverSpec,
    get_solver,
    get_spec,
    list_solvers,
    list_specs,
    register_solver,
)
from repro.arena import (
    ArenaBudget,
    ArenaEntry,
    ArenaResult,
    GraphSuite,
    build_suite,
    list_suites,
    register_suite,
    run_arena,
)
from repro.workloads import (
    Budget,
    ExecutionPolicy,
    GraphSource,
    RunReport,
    Session,
    Workload,
    WorkloadSpec,
    get_workload,
    list_workloads,
    register_workload,
    run_workload,
)
from repro.ising import (
    IsingModel,
    maxcut_to_ising,
    simulated_annealing_maxcut,
    parallel_tempering,
)
from repro.problems import (
    Qubo,
    IsingProblem,
    MaxCutProblem,
    MaxDiCutProblem,
    MaxTwoSatProblem,
    ProblemSource,
    CompiledGraph,
    compile_to_maxcut,
    verify_certificate,
    qubo_to_ising,
    ising_to_qubo,
    list_problem_suites,
    register_problem_suite,
)
from repro.plotting import ascii_line_plot, render_curves

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # graphs
    "Graph",
    "erdos_renyi",
    "complete_graph",
    "complete_bipartite",
    "cycle_graph",
    "load_empirical_graph",
    "list_empirical_graphs",
    # cuts
    "Cut",
    "cut_weight",
    "cut_weights_batch",
    "random_cut",
    "best_random_cut",
    "exact_maxcut",
    "exact_maxcut_value",
    # sdp / spectral
    "solve_maxcut_sdp",
    "hyperplane_rounding",
    "SDPResult",
    "trevisan_simple_spectral",
    "minimum_eigenvector",
    # devices
    "FairCoinPool",
    "BiasedCoinPool",
    "CorrelatedDevicePool",
    "DriftingDevicePool",
    "TelegraphNoisePool",
    # neurons
    "LIFParameters",
    "LIFPopulation",
    "AntiHebbianMinorComponent",
    "OjaPrincipalComponent",
    # circuits
    "LIFGWCircuit",
    "LIFTrevisanCircuit",
    "LIFGWConfig",
    "LIFTrevisanConfig",
    "CircuitResult",
    # batched engine
    "BatchedSolverEngine",
    "EarlyStopConfig",
    "SolveRequest",
    "SolveResult",
    "sequential_solve",
    # algorithms
    "goemans_williamson",
    "trevisan_spectral",
    "random_baseline",
    "SolverSpec",
    "get_solver",
    "get_spec",
    "list_solvers",
    "list_specs",
    "register_solver",
    # solver arena
    "ArenaBudget",
    "ArenaEntry",
    "ArenaResult",
    "GraphSuite",
    "build_suite",
    "list_suites",
    "register_suite",
    "run_arena",
    # unified workload API
    "Budget",
    "ExecutionPolicy",
    "GraphSource",
    "RunReport",
    "Session",
    "Workload",
    "WorkloadSpec",
    "get_workload",
    "list_workloads",
    "register_workload",
    "run_workload",
    # ising baselines
    "IsingModel",
    "maxcut_to_ising",
    "simulated_annealing_maxcut",
    "parallel_tempering",
    # plotting
    "ascii_line_plot",
    "render_curves",
]
