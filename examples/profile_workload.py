#!/usr/bin/env python
"""Observability (repro.obs) — runs in < 5 s.

Demonstrates the tracing + metrics layer behind ``repro profile`` and
``GET /metrics``:

1. run a workload under ``capture()`` and render the per-phase breakdown
   (the library form of ``repro profile <workload>``),
2. export the same spans as Chrome trace-event JSON for chrome://tracing,
3. show that tracing never perturbs results: the traced run's winner and
   best weights equal an untraced run with the same seed,
4. scrape a solve service's metrics registry as Prometheus text.

Usage:
    python examples/profile_workload.py
"""

from __future__ import annotations

import json
import tempfile

from repro.graphs.generators import erdos_renyi
from repro.graphs.io import graph_to_dict
from repro.obs import capture, chrome_trace, render_profile, render_prometheus
from repro.serve import SolverService
from repro.workloads import Session

PARAMS = dict(
    solvers=("lif_tr", "random"),
    suite="er-small",
    trials=1,
    samples=16,
    seed=0,
)


def main() -> None:
    # 1. Capture a traced workload run and render where the time went.
    with capture() as trace:
        traced = Session.from_workload("arena", **PARAMS).run()
    print(render_profile(trace.spans, top=8,
                         title=f"arena workload — {len(trace.spans)} spans"))

    # 2. The same spans as a Chrome trace: open in chrome://tracing
    #    or https://ui.perfetto.dev for a per-thread timeline.
    payload = chrome_trace(trace.spans)
    with tempfile.NamedTemporaryFile(
        "w", suffix=".json", delete=False
    ) as handle:
        json.dump(payload, handle)
    print(f"\n{len(payload['traceEvents'])} trace events "
          f"written to {handle.name}")

    # 3. Tracing is free in answers: an untraced run agrees exactly.
    untraced = Session.from_workload("arena", **PARAMS).run()
    traced_cells = {
        (e.graph_name, e.solver): e.best_weight for e in traced.records
    }
    untraced_cells = {
        (e.graph_name, e.solver): e.best_weight for e in untraced.records
    }
    assert traced_cells == untraced_cells
    print(f"traced/untraced agreement: all {len(traced_cells)} cells equal; "
          f"per-phase timing recorded only when traced: "
          f"{'timing' in traced.metadata} vs {'timing' in untraced.metadata}")

    # 4. A solve service exposes the same registry two ways: the pinned
    #    /stats JSON and Prometheus text (GET /metrics on the HTTP server).
    graph = erdos_renyi(16, 0.35, seed=1)
    with SolverService() as service:
        service.solve(
            {"graph": graph_to_dict(graph), "circuit": "lif_tr",
             "trials": 2, "samples": 8, "seed": 0},
            timeout=60,
        )
        stats = service.stats()
        text = render_prometheus(service.registry)
    print(f"\nserve stats: {stats['completed']} completed, "
          f"p50 {stats['latency']['p50_seconds']:.4f}s")
    print("prometheus sample:")
    for line in text.splitlines():
        if line.startswith("repro_serve_admitted_total") or \
                line.startswith("repro_serve_request_latency_seconds_count"):
            print(f"  {line}")


if __name__ == "__main__":
    main()
