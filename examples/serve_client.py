"""The solve service in action: daemon, client, coalescing, caching.

Runs in well under 5 seconds:

    PYTHONPATH=src python examples/serve_client.py

Boots the `repro serve` stack in-process (no subprocess, ephemeral port),
then walks the full client surface — a graph solve and a certified QUBO
solve over HTTP via ``ServeClient`` — and finishes with the headline
guarantee: several same-shape requests submitted together are coalesced
into a single engine invocation, yet every answer is bit-identical to a
standalone solve with the same seed.
"""

import threading

import numpy as np

from repro.graphs.generators import erdos_renyi
from repro.problems import Qubo
from repro.serve import ServeClient, ServiceConfig, SolverService, serve_http
from repro.serve.protocol import solve_payload


def graph_and_qubo_over_http(graph):
    """One graph request and one problem request through a real HTTP server."""
    with SolverService(ServiceConfig()) as service:
        server = serve_http(service, port=0)  # ephemeral port
        threading.Thread(target=server.serve_forever, daemon=True).start()
        try:
            client = ServeClient(port=server.server_address[1])
            response = client.solve_graph(
                graph, circuit="lif_tr", trials=4, samples=32, seed=1
            )
            print(f"graph solve: best cut {response['best_weight']:.1f} "
                  f"({response['n_trials']} trials, seed {response['seed']})")

            qubo = Qubo(np.array([[-1.0, 2.0, 0.0],
                                  [2.0, -1.0, 2.0],
                                  [0.0, 2.0, -1.0]]))
            response = client.solve_problem(qubo, trials=4, samples=32, seed=2)
            block = response["problem"]
            print(f"qubo solve:  native objective {block['objective']:.1f}, "
                  f"certified={block['certified']} "
                  f"(max error {block['certificate_max_abs_error']:.1e})")

            print(f"healthz: {client.health()['status']}")
        finally:
            server.shutdown()
            server.server_close()


def coalescing_matches_standalone(graph):
    """Submit 6 same-shape requests at once; they fuse into one engine call."""
    # autostart=False parks the scheduler so every submission lands in a
    # single scheduling pass — the deterministic way to observe coalescing.
    service = SolverService(ServiceConfig(max_batch_trials=64), autostart=False)
    payloads = [solve_payload(graph=graph, circuit="lif_tr", trials=2,
                              samples=32, seed=seed) for seed in range(6)]
    jobs = [service.submit(p) for p in payloads]
    service.start()
    responses = [job.wait(timeout=60.0) for job in jobs]
    service.shutdown()

    engine = service.stats()["engine"]
    print(f"coalescing:  {len(jobs)} requests -> "
          f"{engine['invocations']} engine invocation(s), "
          f"coalesce ratio {engine['coalesce_ratio']:.1f}x")

    # Each answer equals a standalone solve of the same payload.
    with SolverService(ServiceConfig()) as solo:
        for payload, response in zip(payloads, responses):
            alone = solo.solve(payload)
            assert response["trial_best_weights"] == alone["trial_best_weights"]
            assert response["assignment"] == alone["assignment"]
    print("coalescing:  every coalesced answer == its standalone solve")


def result_cache_replay(graph):
    """An identical repeat request is answered from the result cache."""
    with SolverService(ServiceConfig()) as service:
        payload = solve_payload(graph=graph, circuit="lif_tr", trials=2,
                                samples=32, seed=0)
        first = service.solve(payload)
        again = service.solve(payload)
        assert again["cached"] and not first["cached"]
        assert again["best_weight"] == first["best_weight"]
        hit_rate = service.stats()["caches"]["results"]["hit_rate"]
        print(f"result cache: repeat request replayed "
              f"(hit rate {hit_rate:.2f}, no new engine work)")


def main():
    graph = erdos_renyi(24, 0.3, seed=0)
    print(f"graph: ER n={graph.n_vertices} m={graph.n_edges} "
          f"fingerprint={graph.fingerprint()[:12]}...")
    graph_and_qubo_over_http(graph)
    coalescing_matches_standalone(graph)
    result_cache_replay(graph)


if __name__ == "__main__":
    main()
