#!/usr/bin/env python
"""Figure 4 / Table I style run on the paper's empirical (Network Repository) graphs.

For each requested graph from the registry (exact DIMACS constructions or the
documented surrogates), runs the four methods and prints both the convergence
table (Figure 4) and the Table I row with the paper's published values for
comparison.

Usage:
    python examples/empirical_graphs.py --graphs hamming6-2 soc-dolphins --samples 512
    python examples/empirical_graphs.py --all --samples 256   # all 16 Table I graphs
"""

from __future__ import annotations

import argparse

from repro.circuits.config import LIFGWConfig, LIFTrevisanConfig
from repro.experiments.config import Figure4Config, Table1Config
from repro.experiments.figure4 import run_figure4_panel
from repro.experiments.reporting import format_figure4_report, format_table1_report
from repro.experiments.table1 import run_table1_row
from repro.graphs.repository import EMPIRICAL_GRAPHS, list_empirical_graphs
from repro.utils.logging import configure_logging


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--graphs", nargs="+", default=["hamming6-2", "soc-dolphins", "road-chesapeake"],
        choices=list_empirical_graphs(), metavar="GRAPH",
        help="Table I graph names to run",
    )
    parser.add_argument("--all", action="store_true", help="run all 16 Table I graphs")
    parser.add_argument("--samples", type=int, default=512)
    parser.add_argument("--solver-samples", type=int, default=100)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    configure_logging()

    names = list_empirical_graphs() if args.all else args.graphs
    lif_gw = LIFGWConfig(burn_in_steps=50, sample_interval=5)
    lif_tr = LIFTrevisanConfig(burn_in_steps=50, sample_interval=5)

    figure_config = Figure4Config(
        n_samples=args.samples, n_solver_samples=args.solver_samples,
        seed=args.seed, lif_gw=lif_gw, lif_tr=lif_tr,
    )
    table_config = Table1Config(
        n_samples=args.samples, n_solver_samples=args.solver_samples,
        n_random_samples=args.samples, seed=args.seed, lif_gw=lif_gw, lif_tr=lif_tr,
    )

    panels = []
    rows = []
    for name in names:
        spec = EMPIRICAL_GRAPHS[name]
        kind = "exact construction" if spec.kind == "exact" else f"surrogate ({spec.family})"
        print(f"\n=== {name}  [{kind}] — {spec.description}")
        panel = run_figure4_panel(name, config=figure_config)
        row = run_table1_row(name, config=table_config)
        panels.append(panel)
        rows.append(row)
        print(format_figure4_report([panel]))

    print("\n\nTable I reproduction (measured vs paper)")
    print(format_table1_report(rows))
    print(
        "\nNote: rows marked surrogate use synthetic stand-in graphs matched on (n, m);"
        "\ntheir absolute cut values are not comparable to the paper, but the method"
        "\nordering (Solver ≈ LIF-GW ≥ LIF-TR ≥ Random) should hold.  See DESIGN.md §2."
    )


if __name__ == "__main__":
    main()
