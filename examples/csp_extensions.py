#!/usr/bin/env python
"""MAXDICUT and MAX2SAT extensions (paper Discussion §VI).

The paper notes that the LIF-GW sampling circuit also implements the rounding
step of the Goemans-Williamson approximation algorithms for MAXDICUT (ratio
0.796) and MAX2SAT (ratio 0.878).  This example runs the software substrates
for both problems on random instances and, for small instances, compares the
approximate values against brute force.

Usage:
    python examples/csp_extensions.py --variables 10 --clauses 30
"""

from __future__ import annotations

import argparse
import itertools

import numpy as np

from repro.algorithms.max2sat import (
    max2sat_gw,
    random_max2sat_instance,
    satisfied_clauses,
)
from repro.algorithms.maxdicut import DirectedGraph, dicut_value, maxdicut_gw
from repro.utils.logging import configure_logging
from repro.utils.rng import as_generator


def random_digraph(n: int, p: float, seed: int) -> DirectedGraph:
    rng = as_generator(seed)
    arcs = [(i, j) for i in range(n) for j in range(n) if i != j and rng.random() < p]
    return DirectedGraph(n, arcs, name=f"digraph_n{n}")


def brute_force_dicut(graph: DirectedGraph) -> float:
    best = 0.0
    for mask in range(1 << graph.n_vertices):
        indicator = np.array(
            [(mask >> i) & 1 for i in range(graph.n_vertices)], dtype=np.int8
        )
        best = max(best, dicut_value(graph, indicator))
    return best


def brute_force_max2sat(instance) -> float:
    best = 0.0
    for bits in itertools.product([False, True], repeat=instance.n_variables):
        best = max(best, satisfied_clauses(instance, np.array(bits)))
    return best


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--vertices", type=int, default=10, help="MAXDICUT graph size")
    parser.add_argument("--arc-probability", type=float, default=0.3)
    parser.add_argument("--variables", type=int, default=10, help="MAX2SAT variables")
    parser.add_argument("--clauses", type=int, default=30, help="MAX2SAT clauses")
    parser.add_argument("--samples", type=int, default=300)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    configure_logging()

    # ------------------------------------------------------------------ MAXDICUT
    graph = random_digraph(args.vertices, args.arc_probability, args.seed)
    result = maxdicut_gw(graph, n_samples=args.samples, seed=args.seed + 1)
    print(f"MAXDICUT on {graph.n_vertices} vertices, {graph.n_arcs} arcs")
    print(f"  SDP relaxation value : {result.sdp_objective:.2f}")
    print(f"  best rounded dicut   : {result.value:g}")
    if graph.n_vertices <= 16:
        optimum = brute_force_dicut(graph)
        ratio = result.value / optimum if optimum else 1.0
        print(f"  exact optimum        : {optimum:g}  (ratio {ratio:.3f}, guarantee 0.796)")

    # ------------------------------------------------------------------ MAX2SAT
    instance = random_max2sat_instance(args.variables, args.clauses, seed=args.seed + 2)
    sat_result = max2sat_gw(instance, n_samples=args.samples, seed=args.seed + 3)
    print(f"\nMAX2SAT with {instance.n_variables} variables, {instance.n_clauses} clauses")
    print(f"  SDP relaxation value    : {sat_result.sdp_objective:.2f}")
    print(f"  best rounded assignment : {sat_result.value:g} clauses satisfied")
    if instance.n_variables <= 18:
        optimum = brute_force_max2sat(instance)
        ratio = sat_result.value / optimum if optimum else 1.0
        print(f"  exact optimum           : {optimum:g}  (ratio {ratio:.3f}, guarantee 0.878)")


if __name__ == "__main__":
    main()
