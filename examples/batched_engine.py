#!/usr/bin/env python
"""Trial-parallel solving with the batched engine (repro.engine).

Runs a batch of independent LIF-GW trials on one Erdős–Rényi graph through
the batched solver engine, then repeats the identical trials through the
sequential per-trial path to demonstrate (a) the throughput gap and (b) the
bit-identical results guaranteed by the engine's seeding contract.  Finally
shows early stopping: the same batch with a plateau rule terminates as soon
as the best-cut distribution converges.

Usage:
    python examples/batched_engine.py
    python examples/batched_engine.py --vertices 200 --trials 32 --samples 512
    python examples/batched_engine.py --circuit lif_tr --early-stop
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.circuits.config import LIFGWConfig, LIFTrevisanConfig
from repro.circuits.lif_gw import LIFGWCircuit
from repro.circuits.lif_trevisan import LIFTrevisanCircuit
from repro.engine import EarlyStopConfig, SolveRequest, sequential_solve, solve
from repro.graphs.generators import erdos_renyi


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--circuit", choices=["lif_gw", "lif_tr"], default="lif_gw")
    parser.add_argument("--vertices", type=int, default=100)
    parser.add_argument("--probability", type=float, default=0.25)
    parser.add_argument("--trials", type=int, default=64)
    parser.add_argument("--samples", type=int, default=256)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--early-stop", action="store_true",
                        help="also run the batch with a plateau rule")
    args = parser.parse_args()

    graph = erdos_renyi(args.vertices, args.probability, seed=args.seed)
    print(f"graph: {graph.name} ({graph.n_vertices} vertices, {graph.n_edges} edges)")

    if args.circuit == "lif_gw":
        circuit = LIFGWCircuit(graph, config=LIFGWConfig(), seed=args.seed)
    else:
        circuit = LIFTrevisanCircuit(graph, config=LIFTrevisanConfig())

    request = SolveRequest(
        circuit=circuit, n_trials=args.trials, n_samples=args.samples, seed=args.seed
    )

    batched = solve(request)
    print(f"\nbatched engine ({batched.backend_name} backend):")
    print(f"  best cut {batched.best_weight:g} of {graph.total_weight:g} total, "
          f"{batched.samples_per_second:,.0f} read-outs/s "
          f"({batched.elapsed_seconds:.3f}s)")

    reference = sequential_solve(request)
    print("sequential per-trial loop:")
    print(f"  best cut {reference.best_weight:g}, "
          f"{reference.samples_per_second:,.0f} read-outs/s "
          f"({reference.elapsed_seconds:.3f}s)")
    identical = np.array_equal(batched.trajectories, reference.trajectories)
    speedup = reference.elapsed_seconds / max(batched.elapsed_seconds, 1e-12)
    print(f"  -> {speedup:.1f}x speedup, trajectories bit-identical: {identical}")

    if args.early_stop:
        stopped = solve(
            SolveRequest(
                circuit=circuit, n_trials=args.trials, n_samples=args.samples,
                seed=args.seed, early_stop=EarlyStopConfig(patience=16, min_rounds=32),
            )
        )
        print(f"\nwith early stop: {stopped.n_rounds}/{stopped.n_samples} rounds "
              f"simulated (best cut {stopped.best_weight:g}, "
              f"early_stopped={stopped.early_stopped})")


if __name__ == "__main__":
    main()
