#!/usr/bin/env python
"""Device-imperfection robustness study (the ablation the paper's Discussion calls for).

The paper models stochastic devices as perfect fair coins and argues the
central-limit structure of the circuits should make them robust to real-device
imperfections.  This example quantifies that: it sweeps biased, correlated,
temporally correlated (random-telegraph) and drifting device pools and reports
the cut quality of both circuits relative to the software solver.

Usage:
    python examples/device_robustness.py --vertices 60 --samples 512
"""

from __future__ import annotations

import argparse

from repro.experiments.ablations import (
    DEVICE_MODELS,
    run_device_imperfection_ablation,
    run_rank_ablation,
)
from repro.experiments.config import AblationConfig
from repro.experiments.reporting import format_table
from repro.utils.logging import configure_logging


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--vertices", type=int, default=60)
    parser.add_argument("--probability", type=float, default=0.25)
    parser.add_argument("--graphs", type=int, default=3)
    parser.add_argument("--samples", type=int, default=512)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--skip-rank", action="store_true", help="skip the SDP rank ablation"
    )
    args = parser.parse_args()

    configure_logging()

    config = AblationConfig(
        n_vertices=args.vertices,
        edge_probability=args.probability,
        n_graphs=args.graphs,
        n_samples=args.samples,
        seed=args.seed,
    )

    for circuit in ("lif_gw", "lif_tr"):
        points = run_device_imperfection_ablation(config=config, circuit=circuit)
        rows = [[p.setting, p.mean_relative_cut, p.sem] for p in points]
        print(f"\nDevice-imperfection ablation — {circuit.upper()} "
              f"(cut weight relative to software solver)")
        print(format_table(["device model", "relative cut", "sem"], rows))

    if not args.skip_rank:
        points = run_rank_ablation(config=config, ranks=(2, 3, 4, 8, 16))
        rows = [[p.setting, p.mean_relative_cut, p.sem] for p in points]
        print("\nSDP rank ablation — LIF-GW (the paper fixes rank 4)")
        print(format_table(["rank", "relative cut", "sem"], rows))

    print(
        "\nInterpretation: the 'fair' row is the paper's idealised device model;"
        "\nthe other rows quantify how much cut quality survives each imperfection."
    )


if __name__ == "__main__":
    main()
