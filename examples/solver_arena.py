#!/usr/bin/env python
"""Cross-method comparison with the solver arena (repro.arena).

Races three registered solvers — the LIF-GW circuit (batched through the
trial-parallel engine), the software Goemans-Williamson solver, and the
random baseline — over the small Erdős–Rényi suite under one shared
trial/sample budget, then prints the per-graph tables, the aggregate
leaderboard, and an ASCII bar chart.  Designed to finish in well under 30
seconds on a laptop.

Usage:
    python examples/solver_arena.py
    python examples/solver_arena.py --solvers lif_gw,trevisan,annealing
    python examples/solver_arena.py --suite structured-small --trials 4
"""

from __future__ import annotations

import argparse

from repro.arena import list_suites
from repro.experiments.reporting import format_arena_report
from repro.plotting.ascii import render_leaderboard
from repro.workloads import arena_result_from_report, run_workload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--solvers", type=str, default="lif_gw,gw,random",
                        help="comma-separated solver registry keys")
    parser.add_argument("--suite", choices=list_suites(), default="er-small")
    parser.add_argument("--trials", type=int, default=2,
                        help="independent trials per stochastic solver")
    parser.add_argument("--budget", type=int, default=64,
                        help="per-trial n_samples budget")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    solvers = [name.strip() for name in args.solvers.split(",") if name.strip()]
    # The arena is a registered workload; the classic ArenaResult view is
    # reconstructed from the uniform RunReport for the report formatters.
    report = run_workload(
        "arena",
        solvers=tuple(solvers),
        suite=args.suite,
        trials=args.trials,
        samples=args.budget,
        seed=args.seed,
    )
    result = arena_result_from_report(report)

    print(format_arena_report(result))
    print()
    print(render_leaderboard(result))

    engine_users = sorted({e.solver for e in result.entries if e.used_engine})
    print(f"\nwinner: {result.winner()}   "
          f"engine-batched solvers: {engine_users or 'none'}   "
          f"({result.elapsed_seconds:.2f}s total)")


if __name__ == "__main__":
    main()
