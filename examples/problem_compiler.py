"""Problem compiler in action: lower a QUBO and a MAX2SAT instance to MAXCUT.

Runs in well under 5 seconds:

    PYTHONPATH=src python examples/problem_compiler.py

Shows the full loop the ``problems`` workload automates — build an instance,
compile it to a MAXCUT graph through an exact gadget reduction, solve the
graph with any registered solver, lift the cut back to a native solution,
and check the value-preservation certificate.
"""

import numpy as np

from repro.algorithms.registry import get_solver
from repro.problems import (
    MaxTwoSatProblem,
    Qubo,
    compile_to_maxcut,
    verify_certificate,
)
from repro.algorithms.max2sat import random_max2sat_instance
from repro.workloads import run_workload


def solve_one(problem, solver_name, n_samples=64, seed=0):
    graph, lifter = compile_to_maxcut(problem, seed=seed)  # certified compile
    cut = get_solver(solver_name)(graph, n_samples=n_samples, seed=seed)
    solution = lifter.lift(cut.assignment)
    certificate = verify_certificate(
        problem, graph, lifter, assignment=cut.assignment, seed=seed
    )
    print(f"{problem.kind:8s} n={problem.n_variables:2d} -> compiled graph "
          f"({graph.n_vertices} vertices, {graph.n_edges} edges)")
    print(f"  {solver_name}: cut weight {cut.weight:.3f} -> native objective "
          f"{problem.objective(solution):.3f} "
          f"(certificate max error {certificate.max_abs_error:.1e})")


def main():
    rng = np.random.default_rng(0)

    # A random QUBO (minimise x^T Q x): compiled via the QUBO→Ising linear
    # map + the ancilla-spin field gadget, solved by simulated annealing.
    solve_one(Qubo(rng.normal(size=(14, 14))), "annealing")

    # A random MAX2SAT instance: compiled via the augmented v0 formulation,
    # solved natively by the MAX2SAT SDP *through the same interface*.
    instance = random_max2sat_instance(10, 30, seed=1)
    solve_one(MaxTwoSatProblem(instance), "max2sat_gw", n_samples=16)

    # The same machinery as a registered workload: race compiled-to-MAXCUT
    # solvers against the native solver over the dicut suite.
    report = run_workload(
        "problems", problem="dicut",
        solvers=("random", "annealing", "maxdicut_gw"),
        trials=2, samples=16, seed=0,
    )
    print("\nproblems workload leaderboard (dicut-small):")
    for row in report.leaderboard:
        print(f"  {row['solver']:12s} mean ratio {row['score']:.3f}")


if __name__ == "__main__":
    main()
