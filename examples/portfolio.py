#!/usr/bin/env python
"""The `auto` portfolio meta-solver end to end — runs in < 5 s.

Demonstrates the routing loop behind ``--solver auto``:

1. extract cheap, relabeling-invariant instance features,
2. cold-start: race a candidate pool by successive halving under one
   budget (paired per-trial seeds, deterministic),
3. mine priors from a saved arena run into a `PortfolioModel`,
4. route with the model — bit-identical to calling the chosen solver
   directly — and save/reload the model through the standard JSON layer.

Usage:
    python examples/portfolio.py
"""

from __future__ import annotations

import tempfile
import warnings
from pathlib import Path

import numpy as np

from repro.algorithms.registry import get_spec
from repro.arena import ArenaBudget, run_arena
from repro.experiments.runner import save_results
from repro.graphs.generators import erdos_renyi
from repro.portfolio import (
    explain_model,
    extract_features,
    fit_from_paths,
    load_model,
    race,
    save_model,
    solve_portfolio,
)
from repro.workloads.spec import Budget

# run_arena below is the deprecated-but-supported shim; keep the demo quiet.
warnings.filterwarnings("ignore", category=DeprecationWarning)


def main() -> None:
    graph = erdos_renyi(24, 0.3, seed=7, name="demo-er")

    # 1. Features: what the router sees. Deterministic and invariant
    #    under vertex relabeling (including the Lanczos gap estimate).
    features = extract_features(graph)
    print(f"features for {graph.name}:")
    for key, value in features.to_dict().items():
        print(f"  {key:<14} {value}")

    # 2. Cold start: no priors, so race a candidate pool. Every lane sees
    #    the same per-trial seed stream; the field halves by interim best
    #    cut each rung until one survivor spends the full budget.
    result = race(graph, ["lif_tr", "trevisan", "local_search"],
                  budget=Budget(n_trials=4, n_samples=64), seed=0)
    print(f"\nrace winner: {result.winner} "
          f"(best cut {result.best_cut.weight:.1f}, "
          f"trials used {result.trials_used})")
    for rung in result.rungs:
        print(f"  rung {rung['rung']}: {rung['active']} -> "
              f"{rung['survivors']}")

    with tempfile.TemporaryDirectory() as tmp:
        # 3. Mine priors from a persisted run (any saved results carrying
        #    solver/n_vertices/n_edges/cut_ratio records are minable).
        arena = run_arena(
            ["lif_tr", "trevisan", "random"],
            suite=[erdos_renyi(16, 0.3, seed=1, name="fit-er")],
            budget=ArenaBudget(n_trials=2, n_samples=32), seed=0)
        runs = Path(tmp) / "runs.json"
        save_results(runs, "compare", arena.entries)
        model = fit_from_paths([runs])
        print(f"\nmined model ({model.n_records} records):")
        print(explain_model(model, top=3))

        # 4. Route with the model: the top-ranked candidate runs with the
        #    caller's exact arguments, so the answer is bit-identical to
        #    invoking that solver directly.
        routed = solve_portfolio(graph, n_samples=64, seed=5, model=model)
        best = model.ranking_for(
            "maxcut/small/mid")[0]["solver"]
        direct = get_spec(best).fn(graph, n_samples=64, seed=5)
        assert routed.weight == direct.weight
        assert np.array_equal(routed.assignment, direct.assignment)
        print(f"routed solve -> {best}: cut {routed.weight:.1f} "
              f"(bit-identical to the direct call)")

        # The model is a registered result type: plain JSON round-trip.
        model_path = Path(tmp) / "model.json"
        save_model(model_path, model)
        assert load_model(model_path) == model
        print(f"model round-tripped through {model_path.name}")


if __name__ == "__main__":
    main()
