#!/usr/bin/env python
"""Figure 3 style sweep: Erdős–Rényi convergence curves for all four methods.

Reproduces a (scaled-down) version of the paper's Figure 3: for each requested
(n, p) cell, generate several random graphs, run LIF-GW, LIF-TR, the software
solver, and random cuts, and print the mean cut weight relative to the solver
as a function of the number of samples.

Usage:
    python examples/er_sweep.py --sizes 50 100 --probabilities 0.1 0.25 --samples 512
    python examples/er_sweep.py --paper-grid --samples 1024   # the paper's full grid
"""

from __future__ import annotations

import argparse

from repro.circuits.config import LIFGWConfig, LIFTrevisanConfig
from repro.experiments.config import (
    PAPER_FIGURE3_PROBABILITIES,
    PAPER_FIGURE3_SIZES,
    Figure3Config,
)
from repro.experiments.figure3 import run_figure3
from repro.experiments.reporting import format_figure3_report
from repro.parallel.pool import ParallelConfig
from repro.utils.logging import configure_logging


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", type=int, nargs="+", default=[50, 100])
    parser.add_argument("--probabilities", type=float, nargs="+", default=[0.1, 0.25])
    parser.add_argument("--graphs-per-cell", type=int, default=3)
    parser.add_argument("--samples", type=int, default=512)
    parser.add_argument("--solver-samples", type=int, default=100)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=1, help="processes per cell")
    parser.add_argument(
        "--paper-grid", action="store_true",
        help="use the paper's full n x p grid (slow)",
    )
    args = parser.parse_args()

    configure_logging()

    sizes = PAPER_FIGURE3_SIZES if args.paper_grid else tuple(args.sizes)
    probabilities = (
        PAPER_FIGURE3_PROBABILITIES if args.paper_grid else tuple(args.probabilities)
    )

    config = Figure3Config(
        sizes=sizes,
        probabilities=probabilities,
        n_graphs_per_cell=args.graphs_per_cell,
        n_samples=args.samples,
        n_solver_samples=args.solver_samples,
        seed=args.seed,
        lif_gw=LIFGWConfig(burn_in_steps=50, sample_interval=5),
        lif_tr=LIFTrevisanConfig(burn_in_steps=50, sample_interval=5),
    )

    cells = run_figure3(config=config, parallel=ParallelConfig(n_workers=args.workers))
    print(format_figure3_report(cells))

    print("\nSummary (final relative cut weight, mean over graphs)")
    print(f"{'cell':>16}  {'LIF-GW':>8}  {'LIF-TR':>8}  {'solver':>8}  {'random':>8}")
    for cell in cells:
        label = f"G({cell.n_vertices},{cell.probability:g})"
        print(
            f"{label:>16}  "
            f"{cell.curves['lif_gw'][-1]:8.3f}  "
            f"{cell.curves['lif_tr'][-1]:8.3f}  "
            f"{cell.curves['solver'][-1]:8.3f}  "
            f"{cell.curves['random'][-1]:8.3f}"
        )


if __name__ == "__main__":
    main()
