#!/usr/bin/env python
"""The unified workload API end to end (repro.workloads) — runs in < 5 s.

Demonstrates the whole surface behind ``repro run``:

1. discover the registered workloads (`list_workloads`),
2. preview an execution plan without running anything (`Session.plan`),
3. run a registered workload and read its uniform `RunReport`,
4. persist / reload the report through the standard JSON layer,
5. declare and run an *ad-hoc* `WorkloadSpec` — no registration, no new
   module, no new CLI subcommand.

Usage:
    python examples/workloads.py
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from repro.experiments.runner import load_results
from repro.workloads import (
    Budget,
    ExecutionPolicy,
    GraphSource,
    Session,
    WorkloadSpec,
    get_workload,
    list_workloads,
    run_workload,
)


def main() -> None:
    # 1. Discovery: every scenario in the repo is a registered workload.
    print("registered workloads:")
    for name in list_workloads():
        print(f"  {name:<10} {get_workload(name).summary}")

    # 2. Plan before running: which (graph, solver) cells, on which path.
    session = Session.from_workload(
        "arena", solvers=("lif_tr", "trevisan", "random"),
        suite="er-small", trials=2, samples=16, seed=0,
    )
    print("\nexecution plan:")
    print(session.plan().describe())

    # 3. Run: a uniform RunReport whatever the workload.
    report = session.run()
    print(f"\nwinner: {report.winner()}  "
          f"({len(report.records)} records, {report.elapsed_seconds:.2f}s)")
    for row in report.leaderboard:
        print(f"  {row['solver']:<10} score={row['score']:.3f}")

    # 4. Persist and reload through the standard experiment JSON layer.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "arena.json"
        report.save(path)
        record = load_results(path)
        payload = json.loads(path.read_text())
        print(f"\nsaved {path.name}: experiment={record.experiment!r}, "
              f"{len(record.results)} results, "
              f"suite={payload['config']['suite']!r}")

    # 5. Ad-hoc spec: a new scenario is ~10 lines, not a new module.
    spec = WorkloadSpec(
        workload="adhoc-er-race",
        graphs=GraphSource.erdos_renyi_grid((16,), (0.4,), per_cell=2),
        solvers=("random", "trevisan", "local_search"),
        budget=Budget(n_trials=2, n_samples=16),
        policy=ExecutionPolicy(mode="sequential"),
        seed=1,
    )
    adhoc = Session(spec).run()
    print(f"\nad-hoc spec {spec.workload!r}: winner {adhoc.winner()}")

    # Convenience one-liner for registered workloads:
    quick = run_workload("arena", solvers=("random", "trevisan"),
                         suite="structured-small", trials=2, samples=8, seed=0)
    print(f"one-liner on structured-small: winner {quick.winner()}")


if __name__ == "__main__":
    main()
