#!/usr/bin/env python
"""The scale subsystem (repro.scale) — runs in < 5 s.

Demonstrates the large-instance pipeline, end to end, without ever
materialising a dense (n, n) matrix:

1. generate a 20k-vertex Barabási–Albert graph with the CSR-native
   vectorised generator (milliseconds, not minutes),
2. compute its minimum normalized-adjacency eigenpair with the randomized
   sketch (``method="sketch"``) and round it to a cut with the
   O(m + n log n) sweep,
3. evolve the graph through random edge-delta batches
   (:class:`repro.scale.stream.EdgeStream`) with fingerprint-chained
   :class:`repro.scale.stream.GraphVersion` snapshots,
4. re-solve each version *warm* from the previous best cut — a handful of
   greedy flips instead of a fresh spectral solve.

Usage:
    python examples/scale_graphs.py
"""

from __future__ import annotations

import time

from repro.scale import (
    EdgeStream,
    GraphVersion,
    scale_barabasi_albert,
    warm_resolve,
)
from repro.spectral.trevisan import trevisan_sweep_cut

N_VERTICES = 20_000
SEED = 0


def main() -> None:
    # 1. CSR-native generation -------------------------------------------
    started = time.perf_counter()
    graph = scale_barabasi_albert(N_VERTICES, 3, seed=SEED)
    generate_seconds = time.perf_counter() - started
    print(f"generated {graph.name}: {graph.n_vertices} vertices, "
          f"{graph.n_edges} edges in {generate_seconds * 1e3:.0f} ms")
    assert graph._adjacency is None  # the dense path was never touched

    # 2. Sketched Trevisan rounding --------------------------------------
    started = time.perf_counter()
    result = trevisan_sweep_cut(graph, method="sketch", seed=SEED)
    solve_seconds = time.perf_counter() - started
    total = float(graph.edge_weights.sum())
    print(f"sketched sweep cut: weight {result.cut.weight:.0f} "
          f"({result.cut.weight / total:.1%} of total edge weight, "
          f"eigenvalue {result.eigenvalue:.4f}) in {solve_seconds:.2f} s")

    # 3 + 4. Evolving timeline with warm re-solves -----------------------
    stream = EdgeStream.random(graph, n_steps=3, deltas_per_step=64, seed=SEED)
    version = GraphVersion.initial(graph)
    previous = result.cut
    for step, batch in enumerate(stream, start=1):
        version = version.apply(batch)
        started = time.perf_counter()
        previous = warm_resolve(version.graph, previous=previous, max_flips=128)
        warm_seconds = time.perf_counter() - started
        print(f"  v{version.version}: {len(batch)} deltas -> "
              f"{version.graph.n_edges} edges, warm re-solve "
              f"weight {previous.weight:.0f} in {warm_seconds * 1e3:.0f} ms "
              f"(parent fp {version.parent_fingerprint[:8]})")

    print("replaying these deltas reproduces every fingerprint exactly — "
          "versions are content-addressed.")


if __name__ == "__main__":
    main()
