#!/usr/bin/env python
"""Quickstart: solve MAXCUT on a random graph with both neuromorphic circuits.

Runs the LIF-Goemans-Williamson and LIF-Trevisan circuits on an Erdős–Rényi
graph, compares them against the software Goemans-Williamson solver, the
software Trevisan spectral algorithm, random cuts, and (because the graph is
small) the exact maximum cut.

Usage:
    python examples/quickstart.py [--vertices 24] [--probability 0.4] [--samples 500]
"""

from __future__ import annotations

import argparse

import repro
from repro.cuts import exact_maxcut_value
from repro.utils.logging import configure_logging


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--vertices", type=int, default=24, help="number of graph vertices")
    parser.add_argument("--probability", type=float, default=0.4, help="edge probability")
    parser.add_argument("--samples", type=int, default=500, help="cut samples per circuit")
    parser.add_argument("--seed", type=int, default=0, help="root random seed")
    args = parser.parse_args()

    configure_logging()

    graph = repro.erdos_renyi(args.vertices, args.probability, seed=args.seed)
    print(f"Graph: {graph.n_vertices} vertices, {graph.n_edges} edges "
          f"(total weight {graph.total_weight:g})")

    # Exact optimum (exhaustive; only feasible because the graph is small).
    optimum = exact_maxcut_value(graph) if graph.n_vertices <= 24 else None
    if optimum is not None:
        print(f"Exact maximum cut: {optimum:g}")

    # Software baselines.
    solver = repro.goemans_williamson(graph, n_samples=200, seed=args.seed + 1)
    spectral = repro.trevisan_spectral(graph)
    random_best, _ = repro.random_baseline(graph, n_samples=args.samples, seed=args.seed + 2)

    # Neuromorphic circuits.
    lif_gw = repro.LIFGWCircuit(graph, seed=args.seed + 3)
    gw_result = lif_gw.sample_cuts(args.samples, seed=args.seed + 4)

    lif_tr = repro.LIFTrevisanCircuit(graph)
    tr_result = lif_tr.sample_cuts(args.samples, seed=args.seed + 5)

    print("\nBest cut weights")
    print(f"  software GW solver   : {solver.best_weight:g}  (SDP bound {solver.sdp.objective:.1f})")
    print(f"  software Trevisan    : {spectral.weight:g}")
    print(f"  LIF-GW circuit       : {gw_result.best_weight:g}")
    print(f"  LIF-Trevisan circuit : {tr_result.best_weight:g}")
    print(f"  random cuts          : {random_best.weight:g}")

    if optimum:
        print("\nApproximation ratios (vs exact optimum)")
        for label, value in [
            ("software GW solver", solver.best_weight),
            ("LIF-GW circuit", gw_result.best_weight),
            ("LIF-Trevisan circuit", tr_result.best_weight),
            ("random cuts", random_best.weight),
        ]:
            print(f"  {label:<22}: {value / optimum:.3f}")

    # Convergence of the LIF-TR circuit (the paper's orange curve).
    running = tr_result.trajectory.running_best()
    checkpoints = [1, len(running) // 10, len(running) // 3, len(running)]
    print("\nLIF-Trevisan running best (cut weight after k samples)")
    for k in checkpoints:
        print(f"  after {k:>6d} samples: {running[k - 1]:g}")


if __name__ == "__main__":
    main()
