#!/usr/bin/env python
"""Sharded, resumable workload execution (repro.distrib) — runs in < 5 s.

Demonstrates the crash-safe execution layer behind
``repro run <workload> --shards N --resume`` and ``repro merge``:

1. split one arena workload into shards with per-shard atomic checkpoints,
2. verify the merged report equals the monolithic run (records equal —
   sharding never changes results, only how they are produced),
3. simulate a crash by deleting one shard's checkpoint, resume, and watch
   only that shard re-execute,
4. fold the checkpoint directory into a report without running anything
   (``repro merge``'s library form).

Usage:
    python examples/sharded_run.py
"""

from __future__ import annotations

import os
import tempfile

from repro.distrib import merge_checkpoints
from repro.workloads import Session

PARAMS = dict(
    solvers=("lif_tr", "random", "trevisan"),
    suite="structured-small",
    trials=2,
    samples=32,
    seed=0,
)


def main() -> None:
    with tempfile.TemporaryDirectory() as checkpoint_dir:
        # 1. A sharded run: 4 shards, each checkpointed atomically.
        report = Session.from_workload("arena", **PARAMS).run(
            shards=4, checkpoint_dir=checkpoint_dir
        )
        distrib = report.metadata["distrib"]
        print(
            f"sharded run: {distrib['n_shards']} shards over "
            f"{distrib['n_units']} units -> {len(report.records)} entries, "
            f"winner {report.winner()!r}"
        )
        print(f"checkpoints: {sorted(os.listdir(checkpoint_dir))}")

        # 2. Sharding is invisible in the results: the monolithic run agrees
        #    cell for cell (seeds pair by (graph, trial), not by shard).
        monolithic = Session.from_workload("arena", **PARAMS).run()
        sharded_best = {(e.graph_name, e.solver): e.best_weight for e in report.records}
        mono_best = {(e.graph_name, e.solver): e.best_weight for e in monolithic.records}
        assert sharded_best == mono_best
        print("monolithic agreement: all", len(mono_best), "cells equal")

        # 3. Crash recovery: lose one shard, resume, only it re-runs.
        os.unlink(os.path.join(checkpoint_dir, "shard-0002.json"))
        resumed = Session.from_workload("arena", **PARAMS).run(
            shards=4, checkpoint_dir=checkpoint_dir, resume=True
        )
        distrib = resumed.metadata["distrib"]
        print(
            f"after simulated crash: re-executed shards "
            f"{distrib['executed_shards']}, resumed {distrib['resumed_shards']}"
        )
        assert distrib["executed_shards"] == [2]

        # 4. Merge-only: fold the directory back into a report, run nothing.
        outcome, manifest = merge_checkpoints(checkpoint_dir)
        print(
            f"merged from disk: workload {manifest['workload']!r}, "
            f"{len(outcome.records)} entries, "
            f"leaderboard winner {outcome.leaderboard[0]['solver']!r}"
        )


if __name__ == "__main__":
    main()
