"""Smoke-tier benchmarks for the bench workload and the sharded executor.

Marked ``bench``: these run the quick-mode bench workload end to end (the
exact pipeline CI's bench-smoke job gates on) and time sharded-vs-monolithic
execution of a small arena spec.  They are fast enough for the default smoke
tier — run them alone with ``pytest -m bench``.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.workloads import BenchRecord, check_baseline, run_workload
from repro.workloads.bench import BENCH_SCHEMA, bench_scenarios, load_baseline

pytestmark = pytest.mark.bench

_BASELINE = os.path.join(os.path.dirname(__file__), "baseline.json")

_QUICK = dict(trials=4, samples=32, seed=0)


@pytest.fixture(scope="module")
def quick_report(tmp_path_factory):
    """One quick-mode bench run shared by the checks below."""
    out = tmp_path_factory.mktemp("bench") / "BENCH_4.json"
    report = run_workload("bench", save=str(out), **_QUICK)
    return report, out


def test_bench_report_schema(quick_report):
    report, out = quick_report
    assert report.metadata["schema"] == BENCH_SCHEMA
    scenarios = {record.scenario for record in report.records}
    assert scenarios == {s for (s,) in bench_scenarios(None)}
    for record in report.records:
        assert isinstance(record, BenchRecord)
        assert record.speedup > 0
        assert record.wall_seconds > 0 and record.baseline_seconds > 0
        assert record.detail["results_match"] is True
    # The saved artifact is the schema'd JSON CI uploads.
    with open(out, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    assert payload["experiment"] == "bench"
    assert payload["config"]["metadata"]["schema"] == BENCH_SCHEMA
    assert all(r["__type__"] == "BenchRecord" for r in payload["results"])


def test_bench_leaderboard_is_speedup_ranked(quick_report):
    report, _ = quick_report
    scores = [row["score"] for row in report.leaderboard]
    assert scores == sorted(scores, reverse=True)
    assert {row["solver"] for row in report.leaderboard} == {
        record.scenario for record in report.records
    }


def test_committed_baseline_gate_passes(quick_report):
    """The committed tolerance floors must hold on a quick-mode run."""
    report, _ = quick_report
    baseline = load_baseline(_BASELINE)
    failures = check_baseline(report, baseline)
    assert failures == [], f"bench baseline gate failed: {failures}"


def test_baseline_gate_catches_regression_and_omission(quick_report):
    report, _ = quick_report
    strict = {"min_speedup": {"engine:lif_gw": 1e9}}
    assert any("below the baseline floor" in f
               for f in check_baseline(report, strict))
    missing = {"min_speedup": {"engine:does_not_exist": 0.1}}
    assert any("missing from bench report" in f
               for f in check_baseline(report, missing))


def test_sharded_bench_merges_identical_scenarios():
    """The bench workload itself shards: same scenario set, valid timings."""
    report = run_workload("bench", shards=3, **_QUICK)
    assert [r.scenario for r in report.records] == [
        s for (s,) in bench_scenarios(None)
    ]
    assert report.metadata["distrib"]["n_shards"] == 3
    assert all(r.speedup > 0 for r in report.records)
