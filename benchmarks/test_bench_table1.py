"""Benchmark E3 — regenerate Table I (maximum cut values on empirical graphs).

Prints, for every graph benchmarked, the measured LIF-GW / LIF-TR / Solver /
Random best cut values next to the paper's published values.  Surrogate graphs
(DESIGN.md §2) are marked; for those the absolute values are not comparable to
the paper but the ordering (Solver ≈ LIF-GW ≥ LIF-TR ≥ Random) should hold.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import FULL, sample_budget
from repro.experiments.config import Table1Config
from repro.experiments.reporting import format_table1_report
from repro.experiments.table1 import run_table1_row
from repro.graphs.repository import list_empirical_graphs

REDUCED_GRAPHS = ["hamming6-2", "johnson16-2-4", "soc-dolphins", "road-chesapeake", "ENZYMES8"]
GRAPHS = list_empirical_graphs() if FULL else REDUCED_GRAPHS


@pytest.mark.parametrize("graph_name", GRAPHS)
def test_bench_table1_row(benchmark, graph_name, fast_gw_config, fast_tr_config):
    """Time one Table I row and print paper-vs-measured values."""
    config = Table1Config(
        n_samples=sample_budget(512, 8192),
        n_solver_samples=sample_budget(128, 512),
        n_random_samples=sample_budget(512, 8192),
        seed=0,
        lif_gw=fast_gw_config,
        lif_tr=fast_tr_config,
    )

    row = benchmark.pedantic(
        run_table1_row, args=(graph_name,), kwargs={"config": config},
        iterations=1, rounds=1,
    )

    print("\n" + format_table1_report([row]))

    measured = row.measured
    # Ordering claims from Table I: the solver and LIF-GW lead, random trails.
    assert measured["lif_gw"] >= 0.9 * measured["solver"]
    assert measured["solver"] >= 0.95 * measured["random"]
    if not row.is_surrogate:
        # Exact constructions: measured best cuts can never exceed the published
        # maximum cut values for these graphs (hamming6-2: 992, johnson16-2-4: 3036).
        assert measured["solver"] <= row.paper["solver"] + 1e-9
        assert measured["lif_gw"] <= row.paper["solver"] + 1e-9
