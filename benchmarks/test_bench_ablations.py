"""Benchmarks E4 & E6 — ablations: device imperfections and SDP rank.

E4 (device imperfection): the paper's Discussion argues the central-limit
structure of the circuits should make them robust to imperfect devices; this
benchmark quantifies cut quality for biased, correlated, temporally correlated
and drifting device pools relative to the fair-coin baseline.

E6 (SDP rank): the paper fixes the LIF-GW factorisation rank at 4; this sweep
shows how cut quality varies with rank.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import sample_budget
from repro.experiments.ablations import (
    DEVICE_MODELS,
    run_device_imperfection_ablation,
    run_learning_rate_ablation,
    run_rank_ablation,
)
from repro.experiments.config import AblationConfig
from repro.experiments.reporting import format_table


def _config() -> AblationConfig:
    return AblationConfig(
        n_vertices=50,
        edge_probability=0.25,
        n_graphs=3,
        n_samples=sample_budget(256, 2048),
        seed=0,
    )


def _print_points(title: str, points) -> None:
    rows = [[p.setting, p.mean_relative_cut, p.sem] for p in points]
    print("\n" + title + "\n" + format_table(["setting", "relative cut", "sem"], rows))


def test_bench_device_imperfection_lif_gw(benchmark):
    """E4: LIF-GW cut quality under imperfect device models."""
    models = {k: DEVICE_MODELS[k] for k in ("fair", "biased_0.6", "correlated_0.2", "telegraph_slow")}
    points = benchmark.pedantic(
        run_device_imperfection_ablation,
        kwargs={"config": _config(), "circuit": "lif_gw", "device_models": models},
        iterations=1, rounds=1,
    )
    _print_points("Device-imperfection ablation (LIF-GW)", points)
    by_name = {p.setting: p.mean_relative_cut for p in points}
    # Robustness claim: mild imperfections cost at most ~15% relative cut quality.
    assert by_name["biased_0.6"] >= 0.85 * by_name["fair"]
    assert by_name["correlated_0.2"] >= 0.80 * by_name["fair"]


def test_bench_device_imperfection_lif_tr(benchmark):
    """E4: LIF-TR cut quality under imperfect device models."""
    models = {k: DEVICE_MODELS[k] for k in ("fair", "biased_0.6", "drifting")}
    points = benchmark.pedantic(
        run_device_imperfection_ablation,
        kwargs={"config": _config(), "circuit": "lif_tr", "device_models": models},
        iterations=1, rounds=1,
    )
    _print_points("Device-imperfection ablation (LIF-TR)", points)
    for p in points:
        assert p.mean_relative_cut > 0.5


def test_bench_rank_ablation(benchmark):
    """E6: LIF-GW quality as a function of the SDP factorisation rank."""
    points = benchmark.pedantic(
        run_rank_ablation,
        kwargs={"config": _config(), "ranks": (2, 3, 4, 8)},
        iterations=1, rounds=1,
    )
    _print_points("SDP rank ablation (LIF-GW)", points)
    by_rank = {p.metadata["rank"]: p.mean_relative_cut for p in points}
    # Rank 4 (the paper's choice) should be within a few percent of rank 8.
    assert by_rank[4] >= by_rank[8] - 0.05
    # Rank 2 is a genuine degradation on dense graphs, or at best equal.
    assert by_rank[2] <= by_rank[8] + 0.05


def test_bench_learning_rate_ablation(benchmark):
    """Extra ablation: sensitivity of LIF-TR to its anti-Hebbian learning rate."""
    points = benchmark.pedantic(
        run_learning_rate_ablation,
        kwargs={"config": _config(), "learning_rates": (0.005, 0.02, 0.1)},
        iterations=1, rounds=1,
    )
    _print_points("Learning-rate ablation (LIF-TR)", points)
    for p in points:
        assert p.mean_relative_cut > 0.5
