"""Benchmark E1 — regenerate Figure 3 (Erdős–Rényi convergence sweep).

The paper's full grid is n in {50, 100, 200, 350, 500} x p in {0.1, 0.25,
0.5, 0.75}, 10 graphs per cell, 2^20 samples.  The default benchmark runs a
representative subset of cells at a reduced budget so it finishes in minutes;
``REPRO_FULL_BENCH=1`` enables the full grid parameters.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import FULL, sample_budget
from repro.experiments.config import Figure3Config
from repro.experiments.figure3 import run_figure3_cell
from repro.experiments.reporting import format_figure3_report
from repro.parallel.pool import ParallelConfig

# Representative corner cells of the paper's grid (smallest/densest tradeoffs).
REDUCED_CELLS = [(50, 0.1), (50, 0.5), (100, 0.25)]
FULL_CELLS = [(n, p) for n in (50, 100, 200, 350, 500) for p in (0.1, 0.25, 0.5, 0.75)]

CELLS = FULL_CELLS if FULL else REDUCED_CELLS


def _config(fast_gw_config, fast_tr_config) -> Figure3Config:
    return Figure3Config(
        sizes=tuple(sorted({n for n, _ in CELLS})),
        probabilities=tuple(sorted({p for _, p in CELLS})),
        n_graphs_per_cell=10 if FULL else 3,
        n_samples=sample_budget(256, 4096),
        n_solver_samples=sample_budget(64, 256),
        seed=0,
        lif_gw=fast_gw_config,
        lif_tr=fast_tr_config,
    )


@pytest.mark.parametrize("n_vertices,probability", CELLS)
def test_bench_figure3_cell(
    benchmark, n_vertices, probability, fast_gw_config, fast_tr_config
):
    """Time one (n, p) panel of Figure 3 and print its convergence table."""
    config = _config(fast_gw_config, fast_tr_config)

    cell = benchmark.pedantic(
        run_figure3_cell,
        args=(n_vertices, probability),
        kwargs={"config": config, "parallel": ParallelConfig(n_workers=1)},
        iterations=1,
        rounds=1,
    )

    report = format_figure3_report([cell])
    print("\n" + report)

    # Shape assertions mirroring the paper's qualitative claims:
    final = {m: cell.curves[m][-1] for m in cell.curves}
    # LIF-GW overlaps the solver curve.
    assert final["lif_gw"] >= 0.9
    # Random never beats the solver.
    assert final["random"] <= 1.02
    # LIF-TR improves over its own early samples.
    assert cell.curves["lif_tr"][-1] >= cell.curves["lif_tr"][0] - 1e-9
