"""Extra comparison benchmark: neuromorphic circuits vs. Ising-annealing baselines.

The paper's introduction positions the circuits against hardware Ising-model
annealers ("without requiring ... conversion of the problem to an Ising model
with pairwise interactions").  This benchmark runs every registered solver —
the two circuits, the software GW solver, the spectral algorithm, random cuts,
simulated annealing, parallel tempering, and greedy local search — on the same
Erdős–Rényi graphs and prints their relative cut quality and runtime, making
the software side of that comparison concrete.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import sample_budget
from repro.algorithms.registry import get_solver
from repro.experiments.reporting import format_table
from repro.graphs.generators import erdos_renyi
from repro.utils.timers import time_call

SOLVER_NAMES = [
    "solver", "lif_gw", "lif_tr", "trevisan", "random",
    "annealing", "tempering", "local_search",
]


@pytest.fixture(scope="module")
def comparison_graph():
    return erdos_renyi(80, 0.25, seed=7, name="comparison_er80")


@pytest.mark.parametrize("solver_name", SOLVER_NAMES)
def test_bench_solver_comparison(benchmark, solver_name, comparison_graph):
    """Time each registered solver on the same graph (cut quality printed)."""
    n_samples = sample_budget(256, 2048)
    solver = get_solver(solver_name)

    cut = benchmark.pedantic(
        solver, args=(comparison_graph,),
        kwargs={"n_samples": n_samples, "seed": 11},
        iterations=1, rounds=1,
    )

    assert 0 <= cut.weight <= comparison_graph.total_weight
    print(f"\n{solver_name}: cut weight {cut.weight:g} "
          f"(of total {comparison_graph.total_weight:g})")


def test_bench_solver_leaderboard(benchmark, comparison_graph):
    """Run all solvers back-to-back and print a quality/runtime leaderboard."""
    n_samples = sample_budget(256, 2048)

    def run_all():
        rows = []
        for name in SOLVER_NAMES:
            cut, seconds = time_call(
                lambda name=name: get_solver(name)(
                    comparison_graph, n_samples=n_samples, seed=13
                )
            )
            rows.append((name, cut.weight, seconds))
        return rows

    rows = benchmark.pedantic(run_all, iterations=1, rounds=1)
    reference = max(weight for _, weight, _ in rows)
    table = [
        [name, weight, weight / reference, seconds]
        for name, weight, seconds in sorted(rows, key=lambda r: -r[1])
    ]
    print("\n" + format_table(["solver", "cut", "relative", "seconds"], table))

    by_name = {name: weight for name, weight, _ in rows}
    # The SDP-based methods should lead; random should not win.
    assert by_name["solver"] >= 0.95 * reference
    assert by_name["lif_gw"] >= 0.9 * reference
    assert by_name["random"] <= reference
