"""Benchmark: the solver arena's engine routing vs. all-sequential execution.

The arena's promise is that batchable circuits ride the trial-parallel
engine for free.  This benchmark runs the same 3-solver comparison twice —
once with engine routing enabled and once forced sequential — and prints
both leaderboards, so the engine's contribution to end-to-end comparison
wall time is visible next to the timing numbers.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import sample_budget
from repro.experiments.reporting import format_arena_leaderboard
from repro.graphs.generators import erdos_renyi
from repro.workloads import arena_result_from_report, run_workload

SOLVERS = ("lif_tr", "random", "trevisan")


@pytest.fixture(scope="module")
def arena_graphs():
    return [
        erdos_renyi(80, 0.25, seed=21, name="arena_er80"),
        erdos_renyi(120, 0.15, seed=22, name="arena_er120"),
    ]


@pytest.mark.slow
@pytest.mark.parametrize("use_engine", [True, False], ids=["engine", "sequential"])
def test_bench_arena_routing(benchmark, arena_graphs, use_engine):
    """Time a full arena run with and without engine routing."""
    report = benchmark.pedantic(
        run_workload,
        args=("arena",),
        kwargs={"solvers": SOLVERS, "suite": arena_graphs, "trials": 8,
                "samples": sample_budget(128, 1024), "seed": 17,
                "use_engine": use_engine},
        iterations=1, rounds=1,
    )
    result = arena_result_from_report(report)

    entries = {e.solver: e for e in result.entries_for_graph("arena_er80")}
    assert entries["lif_tr"].used_engine is use_engine
    print("\n" + format_arena_leaderboard(result))
