"""Shared configuration for the benchmark harness.

Each benchmark regenerates one of the paper's evaluation artifacts (Figure 3,
Figure 4, Table I) or one of the DESIGN.md ablations, at a reduced sample
budget by default.  Set the environment variable ``REPRO_FULL_BENCH=1`` to run
with budgets closer to the paper's (much slower).

The benchmark functions print the regenerated rows/series so running

    pytest benchmarks/ --benchmark-only -s

shows the tables alongside the timing numbers.
"""

from __future__ import annotations

import os

import pytest

from repro.circuits.config import LIFGWConfig, LIFTrevisanConfig

#: Toggle for paper-scale budgets.
FULL = os.environ.get("REPRO_FULL_BENCH", "0") == "1"


def sample_budget(reduced: int, full: int) -> int:
    """Pick the reduced or full sample budget depending on REPRO_FULL_BENCH."""
    return full if FULL else reduced


@pytest.fixture(scope="session")
def fast_gw_config() -> LIFGWConfig:
    """LIF-GW configuration tuned for benchmark throughput."""
    return LIFGWConfig(burn_in_steps=50, sample_interval=5, sdp_max_iterations=800)


@pytest.fixture(scope="session")
def fast_tr_config() -> LIFTrevisanConfig:
    """LIF-TR configuration tuned for benchmark throughput."""
    return LIFTrevisanConfig(burn_in_steps=50, sample_interval=5)
