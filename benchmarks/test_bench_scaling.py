"""Benchmark E5 — hardware-throughput projection and substrate micro-benchmarks.

The first benchmark regenerates the paper's Discussion-section projection
(millions of hardware samples during a software spectral solve, billions
during an SDP solve) by actually timing the software solvers built in this
repository and feeding those times into the hardware model.

The remaining benchmarks are micro-benchmarks of the substrates the circuits
are built from (batched cut evaluation, LIF integration, SDP solve, spectral
solve), which document where the simulation time goes.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import sample_budget
from repro.analysis.scaling import HardwareModel, throughput_report
from repro.cuts.cut import cut_weights_batch
from repro.devices.bernoulli import FairCoinPool
from repro.graphs.generators import erdos_renyi
from repro.neurons.lif import LIFPopulation
from repro.sdp.burer_monteiro import solve_maxcut_sdp
from repro.spectral.trevisan import trevisan_simple_spectral
from repro.utils.timers import time_call


def test_bench_hardware_projection(benchmark):
    """E5: regenerate the paper's hardware-vs-software throughput table."""
    graph = erdos_renyi(200, 0.25, seed=0)

    _, spectral_seconds = time_call(lambda: trevisan_simple_spectral(graph))
    _, sdp_seconds = time_call(lambda: solve_maxcut_sdp(graph, rank=4, seed=1))

    model = HardwareModel(lif_time_constant_s=1e-9, steps_per_sample=10)
    report = benchmark.pedantic(
        throughput_report,
        args=(model,),
        kwargs={
            "software_spectral_seconds": max(spectral_seconds, 1e-4),
            "software_sdp_seconds": max(sdp_seconds, 1e-3),
        },
        iterations=1, rounds=1,
    )

    print(
        f"\nHardware projection (G(200, 0.25)):\n"
        f"  software spectral solve: {spectral_seconds * 1e3:.2f} ms\n"
        f"  software SDP solve:      {sdp_seconds * 1e3:.2f} ms\n"
        f"  hardware samples/s:      {report['hardware_samples_per_second']:.3g}\n"
        f"  samples during spectral: {report['samples_during_spectral_solve']:.3g}\n"
        f"  samples during SDP:      {report['samples_during_sdp_solve']:.3g}"
    )

    # The paper's claim: hardware generates orders of magnitude more samples in
    # the time of either software solve than it needs (>= 10^4 here because the
    # measured software times are far below the paper's 10 ms reference).
    assert report["samples_during_spectral_solve"] >= 1e4
    assert report["samples_during_sdp_solve"] >= report["samples_during_spectral_solve"]


def test_bench_batched_cut_evaluation(benchmark):
    """Micro-benchmark: batched cut-weight evaluation (the hot loop of every sweep)."""
    graph = erdos_renyi(500, 0.25, seed=2)
    rng = np.random.default_rng(3)
    assignments = np.where(rng.random((1024, graph.n_vertices)) < 0.5, 1, -1).astype(np.int8)

    weights = benchmark(cut_weights_batch, graph, assignments)
    assert weights.shape == (1024,)
    assert np.all(weights <= graph.total_weight)


def test_bench_lif_integration(benchmark):
    """Micro-benchmark: subthreshold LIF integration for a 500-neuron population."""
    graph = erdos_renyi(500, 0.1, seed=4)
    weights = graph.trevisan_matrix()
    steps = sample_budget(2000, 20000)
    states = FairCoinPool(500, seed=5).sample(steps)

    def run():
        population = LIFPopulation(weights)
        return population.run_subthreshold(states)

    trajectory = benchmark.pedantic(run, iterations=1, rounds=3)
    assert trajectory.shape == (steps, 500)


def test_bench_sdp_solve(benchmark):
    """Micro-benchmark: rank-4 Burer-Monteiro solve on G(200, 0.25)."""
    graph = erdos_renyi(200, 0.25, seed=6)
    result = benchmark.pedantic(
        solve_maxcut_sdp, args=(graph,), kwargs={"rank": 4, "seed": 7},
        iterations=1, rounds=3,
    )
    assert result.objective > 0


def test_bench_spectral_solve(benchmark):
    """Micro-benchmark: software Trevisan simple-spectral solve on G(500, 0.1)."""
    graph = erdos_renyi(500, 0.1, seed=8)
    result = benchmark.pedantic(
        trevisan_simple_spectral, args=(graph,), iterations=1, rounds=3
    )
    assert result.cut.weight > 0
