"""Batched-engine throughput benchmarks: engine vs. sequential circuits.

Measures the trial-parallel engine against the sequential per-trial loop on
the workloads the paper's sweeps are made of:

* LIF-GW on a 100-node Erdős–Rényi graph, 64-trial batches, both read-outs.
  The spike read-out (the hardware-native mechanism) must show >= 5x
  aggregate throughput; the membrane read-out must show a solid win too.
* LIF-TR with the dense vs. sparse weight backend on a low-density graph.

Timings take the best of several repeats (after a warm-up solve, so one-time
page-faulting of the current buffers is not billed to either side).  Results
are asserted bit-identical between the two paths before any speedup claim.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.conftest import sample_budget
from repro.circuits.config import LIFGWConfig, LIFTrevisanConfig
from repro.circuits.lif_gw import LIFGWCircuit
from repro.circuits.lif_trevisan import LIFTrevisanCircuit
from repro.engine import SolveRequest, sequential_solve, solve
from repro.graphs.generators import erdos_renyi

#: The acceptance workload: 64-trial batches on a 100-node ER graph.
N_TRIALS = 64
N_VERTICES = 100


@pytest.fixture(scope="module")
def bench_graph():
    return erdos_renyi(N_VERTICES, 0.25, seed=42, name="engine_bench_er100")


def _best_of(fn, repeats: int = 3):
    """Best wall-clock of *repeats* runs and the last result."""
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _speedup(circuit, n_samples: int, repeats: int = 5):
    request = SolveRequest(
        circuit=circuit, n_trials=N_TRIALS, n_samples=n_samples, seed=2
    )
    solve(request)  # warm-up: allocator + BLAS
    batched_s, batched = _best_of(lambda: solve(request), repeats)
    sequential_s, sequential = _best_of(lambda: sequential_solve(request), repeats)
    assert np.array_equal(batched.trajectories, sequential.trajectories), (
        "batched engine diverged from the sequential path"
    )
    return sequential_s / batched_s, batched_s, sequential_s


def test_bench_engine_spike_readout_speedup(benchmark, bench_graph):
    """Hardware-native spike read-out: the engine must be >= 5x faster."""
    n_samples = sample_budget(256, 2048)
    circuit = LIFGWCircuit(
        bench_graph,
        config=LIFGWConfig(burn_in_steps=100, sample_interval=10, readout="spike"),
        seed=1,
    )

    speedup, batched_s, sequential_s = benchmark.pedantic(
        _speedup, args=(circuit, n_samples), iterations=1, rounds=1
    )
    throughput = N_TRIALS * n_samples / batched_s
    print(
        f"\nspike readout: batched {batched_s:.3f}s, sequential {sequential_s:.3f}s "
        f"-> {speedup:.1f}x ({throughput:,.0f} read-outs/s)"
    )
    assert speedup >= 5.0, (
        f"expected >= 5x engine speedup on {N_TRIALS}-trial batches of a "
        f"{N_VERTICES}-node ER graph, measured {speedup:.2f}x"
    )


def test_bench_engine_membrane_readout_speedup(benchmark, bench_graph):
    """Membrane (Gaussian-rounding) read-out: assert a conservative 2x floor."""
    n_samples = sample_budget(256, 2048)
    circuit = LIFGWCircuit(
        bench_graph,
        config=LIFGWConfig(burn_in_steps=100, sample_interval=10),
        seed=1,
    )

    speedup, batched_s, sequential_s = benchmark.pedantic(
        _speedup, args=(circuit, n_samples), iterations=1, rounds=1
    )
    throughput = N_TRIALS * n_samples / batched_s
    print(
        f"\nmembrane readout: batched {batched_s:.3f}s, sequential {sequential_s:.3f}s "
        f"-> {speedup:.1f}x ({throughput:,.0f} read-outs/s)"
    )
    assert speedup >= 2.0


@pytest.mark.slow
def test_bench_engine_sparse_backend(benchmark):
    """LIF-TR dense vs. sparse weight backend on a low-density graph."""
    graph = erdos_renyi(256, 0.015, seed=3, name="engine_bench_sparse_er256")
    circuit = LIFTrevisanCircuit(
        graph, config=LIFTrevisanConfig(burn_in_steps=50, sample_interval=5)
    )
    n_samples = sample_budget(64, 512)

    def run(backend):
        request = SolveRequest(
            circuit=circuit, n_trials=8, n_samples=n_samples, seed=4, backend=backend
        )
        solve(request)  # warm-up
        return _best_of(lambda: solve(request), repeats=2)

    def compare():
        dense_s, dense = run("dense")
        sparse_s, sparse = run("sparse")
        return dense_s, sparse_s, dense, sparse

    dense_s, sparse_s, dense, sparse = benchmark.pedantic(
        compare, iterations=1, rounds=1
    )
    print(
        f"\nsparse backend: dense {dense_s:.3f}s vs sparse {sparse_s:.3f}s "
        f"({dense_s / sparse_s:.2f}x) on density {graph.density():.3f}"
    )
    assert sparse.backend_name == "sparse"
    # Backends agree on the cuts (floating-point round-off does not flip signs
    # on this workload).
    assert np.array_equal(dense.trajectories, sparse.trajectories)


def test_bench_engine_smoke(bench_graph):
    """Fast non-benchmark smoke: engine runs and beats 1x trivially.

    Kept cheap (and unmarked) so ``-m "not slow"`` tier-1 runs still cover
    the engine end to end.
    """
    circuit = LIFGWCircuit(
        bench_graph,
        config=LIFGWConfig(burn_in_steps=20, sample_interval=4),
        seed=1,
    )
    request = SolveRequest(circuit=circuit, n_trials=8, n_samples=16, seed=0)
    result = solve(request)
    assert result.n_rounds == 16
    assert result.best_weight > 0
