"""Benchmark E2 — regenerate Figure 4 (empirical-graph convergence curves).

Each panel is one Network-Repository graph (exact construction or documented
surrogate).  The reduced benchmark covers the small/medium graphs; the full
run (REPRO_FULL_BENCH=1) covers all 16 Table I graphs.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import FULL, sample_budget
from repro.experiments.config import Figure4Config
from repro.experiments.figure4 import run_figure4_panel
from repro.experiments.reporting import format_figure4_report
from repro.graphs.repository import list_empirical_graphs

REDUCED_GRAPHS = ["hamming6-2", "soc-dolphins", "road-chesapeake", "eco-stmarks", "ENZYMES8"]
GRAPHS = list_empirical_graphs() if FULL else REDUCED_GRAPHS


@pytest.mark.parametrize("graph_name", GRAPHS)
def test_bench_figure4_panel(benchmark, graph_name, fast_gw_config, fast_tr_config):
    """Time one Figure 4 panel and print its convergence table."""
    config = Figure4Config(
        n_samples=sample_budget(256, 4096),
        n_solver_samples=sample_budget(64, 256),
        seed=0,
        lif_gw=fast_gw_config,
        lif_tr=fast_tr_config,
    )

    panel = benchmark.pedantic(
        run_figure4_panel, args=(graph_name,), kwargs={"config": config},
        iterations=1, rounds=1,
    )

    print("\n" + format_figure4_report([panel]))

    # Shape assertions: LIF-GW tracks the solver; random does not exceed it by much.
    assert panel.curves["lif_gw"][-1] >= 0.85
    assert panel.curves["random"][-1] <= 1.05
    assert panel.best_weights["solver"] > 0
