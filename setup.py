"""Packaging metadata for the repro library.

A plain ``setup.py`` (rather than ``pyproject.toml``) so that
``pip install -e .`` works in offline environments whose setuptools predates
PEP 660 editable wheels (no ``wheel`` package available).  The long
description is the top-level README so the package page mirrors the repo
front page.
"""

import os
import re

from setuptools import find_packages, setup

_HERE = os.path.abspath(os.path.dirname(__file__))


def _read_readme() -> str:
    path = os.path.join(_HERE, "README.md")
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _read_version() -> str:
    path = os.path.join(_HERE, "src", "repro", "__init__.py")
    with open(path, "r", encoding="utf-8") as handle:
        match = re.search(r'^__version__ = "([^"]+)"', handle.read(), re.MULTILINE)
    if match is None:
        raise RuntimeError("__version__ not found in src/repro/__init__.py")
    return match.group(1)


setup(
    name="repro",
    version=_read_version(),
    description=(
        "Reproduction of 'Stochastic Neuromorphic Circuits for Solving "
        "MAXCUT' (IPDPS 2023): LIF circuits, classical baselines, a batched "
        "trial-parallel engine, and a cross-method solver arena"
    ),
    long_description=_read_readme(),
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    packages=find_packages(where="src"),
    package_dir={"": "src"},
    python_requires=">=3.9",
    install_requires=["numpy", "scipy"],
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Topic :: Scientific/Engineering",
    ],
)
