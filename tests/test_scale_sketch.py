"""Tests for randomized sketching and the sparse sweep (repro.scale.sketch)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cuts.cut import cut_weight
from repro.graphs.generators import erdos_renyi
from repro.scale.generators import scale_barabasi_albert
from repro.scale.sketch import (
    randomized_range_finder,
    randomized_svd,
    sketched_minimum_eigenpair,
    sweep_cut_from_scores,
)
from repro.spectral.trevisan import minimum_eigenvector, trevisan_sweep_cut
from repro.utils.validation import ValidationError


class TestRangeFinder:
    def test_basis_is_orthonormal_and_deterministic(self):
        rng = np.random.default_rng(0)
        matrix = rng.standard_normal((60, 40))
        q1 = randomized_range_finder(matrix, rank=10, seed=3)
        q2 = randomized_range_finder(matrix, rank=10, seed=3)
        assert np.allclose(q1.T @ q1, np.eye(q1.shape[1]), atol=1e-10)
        assert np.array_equal(q1, q2)
        q3 = randomized_range_finder(matrix, rank=10, seed=4)
        assert not np.array_equal(q1, q3)

    def test_captures_low_rank_range_exactly(self):
        rng = np.random.default_rng(1)
        low_rank = rng.standard_normal((50, 5)) @ rng.standard_normal((5, 30))
        q = randomized_range_finder(low_rank, rank=5, seed=0)
        reconstructed = q @ (q.T @ low_rank)
        assert np.allclose(reconstructed, low_rank, atol=1e-8)

    def test_rejects_bad_rank(self):
        with pytest.raises(ValidationError):
            randomized_range_finder(np.eye(4), rank=0)
        with pytest.raises(ValidationError):
            randomized_range_finder(np.eye(4), rank=2, oversample=-1)


class TestRandomizedSVD:
    def test_recovers_low_rank_factorisation(self):
        rng = np.random.default_rng(2)
        matrix = rng.standard_normal((40, 25))
        u_full, s_full, vt_full = np.linalg.svd(matrix, full_matrices=False)
        u, s, vt = randomized_svd(matrix, rank=25, oversample=0,
                                  n_power_iterations=4, seed=0)
        assert np.allclose(s, s_full, atol=1e-8)
        assert np.allclose(u @ np.diag(s) @ vt, matrix, atol=1e-8)

    def test_truncates_to_rank(self):
        matrix = np.diag([5.0, 3.0, 1.0, 0.1])
        u, s, vt = randomized_svd(matrix, rank=2, n_power_iterations=4, seed=0)
        assert s.shape == (2,)
        assert np.allclose(s, [5.0, 3.0], atol=1e-6)


class TestSketchedMinimumEigenpair:
    def test_exact_regime_matches_dense(self):
        graph = scale_barabasi_albert(80, 3, seed=1)
        value_d, vector_d = minimum_eigenvector(graph, method="dense")
        value_s, vector_s = sketched_minimum_eigenpair(
            graph, rank=80, oversample=0, n_power_iterations=8, seed=2
        )
        cosine = abs(float(vector_d @ vector_s))
        assert value_s == pytest.approx(value_d, abs=1e-8)
        assert cosine > 0.999

    def test_sketch_regime_ritz_value_close(self):
        graph = erdos_renyi(300, 0.05, seed=4)
        value_d, _ = minimum_eigenvector(graph, method="dense")
        value_s, vector_s = sketched_minimum_eigenpair(
            graph, rank=16, n_power_iterations=20, seed=0
        )
        # Rayleigh-Ritz upper-bounds the true minimum eigenvalue.
        assert value_s >= value_d - 1e-10
        assert value_s == pytest.approx(value_d, abs=0.02)
        assert np.linalg.norm(vector_s) == pytest.approx(1.0, abs=1e-9)

    def test_zero_edge_and_empty_graph_conventions(self):
        from repro.graphs.graph import Graph

        value, vector = sketched_minimum_eigenpair(Graph(5))
        assert value == 0.0
        assert vector.tolist() == [1.0, 0.0, 0.0, 0.0, 0.0]
        value, vector = sketched_minimum_eigenpair(Graph(0))
        assert value == 0.0 and vector.shape == (0,)

    def test_deterministic_in_seed(self):
        graph = scale_barabasi_albert(200, 3, seed=7)
        a = sketched_minimum_eigenpair(graph, seed=5)
        b = sketched_minimum_eigenpair(graph, seed=5)
        assert a[0] == b[0]
        assert np.array_equal(a[1], b[1])


class TestSweepCutFromScores:
    def test_matches_dense_batched_sweep(self):
        graph = erdos_renyi(60, 0.2, seed=3)
        _, vector = minimum_eigenvector(graph, method="dense")
        dense_result = trevisan_sweep_cut(graph, method="dense")
        sparse_cut = sweep_cut_from_scores(graph, vector)
        assert sparse_cut.weight == pytest.approx(dense_result.cut.weight)

    def test_weight_consistent_with_assignment(self):
        graph = scale_barabasi_albert(150, 2, seed=0)
        scores = np.random.default_rng(0).standard_normal(graph.n_vertices)
        cut = sweep_cut_from_scores(graph, scores)
        assert cut.weight == pytest.approx(cut_weight(graph, cut.assignment))

    def test_rejects_wrong_length_scores(self):
        graph = erdos_renyi(10, 0.3, seed=0)
        with pytest.raises(ValidationError):
            sweep_cut_from_scores(graph, np.zeros(9))


class TestSketchedTrevisanQuality:
    def test_quality_within_pinned_tolerance_of_exact(self):
        # The acceptance bound: on <= 2k-vertex graphs the sketched sweep
        # cut stays within 10% of the exact spectral sweep cut.
        for seed in (0, 1):
            graph = scale_barabasi_albert(1500, 3, seed=seed)
            exact = trevisan_sweep_cut(graph, method="arpack")
            sketched = trevisan_sweep_cut(graph, method="sketch", seed=seed)
            assert sketched.cut.weight >= 0.9 * exact.cut.weight
