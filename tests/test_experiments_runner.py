"""Tests for experiment result persistence (repro.experiments.runner)."""

import json

import numpy as np
import pytest

from repro.experiments.ablations import AblationPoint
from repro.experiments.runner import (
    ExperimentRecord,
    load_results,
    results_to_jsonable,
    save_results,
)
from repro.experiments.table1 import Table1Row
from repro.utils.validation import ValidationError


def _toy_row():
    return Table1Row(
        graph_name="toy",
        n_vertices=5,
        n_edges=6,
        measured={"lif_gw": 5.0, "lif_tr": 4.0, "solver": 5.0, "random": 3.0},
        paper={"lif_gw": 5, "solver": 5, "lif_tr": 5, "random": 4, "reference": 5},
        is_surrogate=True,
    )


def _toy_point():
    return AblationPoint(
        setting="fair",
        mean_relative_cut=0.97,
        sem=0.01,
        per_graph=np.array([0.96, 0.98]),
        metadata={"circuit": "lif_gw"},
    )


class TestResultsToJsonable:
    def test_table1_row_serialised(self):
        payload = results_to_jsonable([_toy_row()])
        assert payload[0]["__type__"] == "Table1Row"
        assert payload[0]["measured"]["lif_gw"] == 5.0

    def test_numpy_arrays_become_lists(self):
        payload = results_to_jsonable([_toy_point()])
        assert payload[0]["per_graph"] == [0.96, 0.98]

    def test_rejects_unknown_types(self):
        with pytest.raises(ValidationError):
            results_to_jsonable([{"not": "a result"}])

    def test_json_round_trip(self):
        payload = results_to_jsonable([_toy_row(), _toy_row()])
        text = json.dumps(payload)
        assert json.loads(text) == payload


def _toy_instances():
    """One toy instance of every registered result type (keyed by type name)."""
    from repro.arena.results import ArenaEntry
    from repro.experiments.figure3 import Figure3Cell
    from repro.experiments.figure4 import Figure4Panel
    from repro.experiments.runner import run_circuit_trials
    from repro.distrib import ShardCheckpoint
    from repro.graphs.generators import erdos_renyi
    from repro.portfolio import PortfolioModel
    from repro.workloads import BenchRecord, RunReport
    from repro.workloads.evolving import EvolvingRecord

    graph = erdos_renyi(10, 0.5, seed=0, name="toy10")
    solve_result = run_circuit_trials(
        graph=graph, circuit="lif_tr", n_trials=2, n_samples=4, seed=0
    )
    counts = np.array([1, 2, 4])
    curve = {"lif_gw": np.array([0.5, 0.7, 0.9])}
    arena_entry = ArenaEntry(
        solver="random", graph_name="toy10", n_vertices=10, n_edges=20,
        total_weight=20.0, best_weight=12.0, mean_weight=11.0, cut_ratio=1.0,
        n_trials=2, n_samples=8, elapsed_seconds=0.01, samples_per_second=1600.0,
        used_engine=False, metadata={"trial_weights": [11.0, 12.0]},
    )
    instances = [
        _toy_row(),
        _toy_point(),
        Figure3Cell(
            n_vertices=10, probability=0.5, sample_counts=counts,
            curves=dict(curve), sems=dict(curve),
            solver_best_weights=np.array([12.0]), metadata={"n_graphs": 1},
        ),
        Figure4Panel(
            graph_name="toy10", n_vertices=10, n_edges=20, sample_counts=counts,
            curves=dict(curve), solver_best_weight=12.0,
            best_weights={"lif_gw": 11.0}, metadata={},
        ),
        solve_result,
        arena_entry,
        RunReport(
            workload="arena", seed=0, params={"suite": "er-small"},
            records=[arena_entry], leaderboard=[{"solver": "random", "score": 1.0}],
            elapsed_seconds=0.02, metadata={"suite": "er-small"}, version="1.0.0",
        ),
        ShardCheckpoint(
            workload="arena", shard_index=0, n_shards=2, fingerprint="abc123",
            units=[[0, "random", 0, 2]],
            payloads=[{"graph_index": 0, "solver": "random", "weights": [11.0]}],
            elapsed_seconds=0.01,
        ),
        BenchRecord(
            scenario="engine:lif_tr", suite="er-small", wall_seconds=0.5,
            baseline_seconds=1.0, speedup=2.0, detail={"results_match": True},
        ),
        EvolvingRecord(
            graph_name="toy10", trial=0, step=1, n_vertices=10, n_edges=20,
            fingerprint="abc123", method="auto", warm_weight=12.0,
            warm_seconds=0.01, cold_weight=12.5, cold_seconds=0.05,
            quality_ratio=0.96, compared=True,
            detail={"parent_fingerprint": "def456"},
        ),
        PortfolioModel(
            buckets={"maxcut/small/mid": [
                {"solver": "trevisan", "mean_ratio": 1.0,
                 "count": 1, "wins": 1},
            ]},
            overall=[{"solver": "trevisan", "mean_ratio": 1.0,
                      "count": 1, "wins": 1}],
            n_reports=1, n_records=1, sources=["toy.json"],
        ),
    ]
    return {type(instance).__name__: instance for instance in instances}


class TestEveryRegisteredTypeRoundTrips:
    """Satellite contract: load_results round-trips every registered type."""

    def test_toy_instances_cover_the_registry(self):
        from repro.experiments.runner import _RESULT_TYPES

        covered = set(_toy_instances())
        registered = {t.__name__ for t in _RESULT_TYPES}
        assert registered <= covered, f"missing toys for {registered - covered}"

    @pytest.mark.parametrize("type_name", [
        "Table1Row", "AblationPoint", "Figure3Cell", "Figure4Panel",
        "SolveResult", "ArenaEntry", "RunReport", "ShardCheckpoint",
        "BenchRecord", "PortfolioModel",
    ])
    def test_round_trip(self, type_name, tmp_path):
        instance = _toy_instances()[type_name]
        path = tmp_path / f"{type_name}.json"
        save_results(path, "round-trip", [instance], config={"type": type_name})
        loaded = load_results(path)
        assert loaded.result_type() == type_name
        assert loaded.config == {"type": type_name}
        # The payload is what a fresh JSON parse sees — fully JSON-safe.
        assert loaded.results == json.loads(path.read_text())["results"]

    def test_dynamically_registered_type_round_trips(self, tmp_path):
        import dataclasses

        from repro.experiments import runner as runner_module

        @dataclasses.dataclass(frozen=True)
        class _CustomResult:
            label: str
            values: list

        try:
            runner_module.register_result_type(_CustomResult)
            path = tmp_path / "custom.json"
            save_results(path, "custom", [_CustomResult("x", [1, 2.5])])
            loaded = load_results(path)
            assert loaded.result_type() == "_CustomResult"
            assert loaded.results[0]["values"] == [1, 2.5]
        finally:
            runner_module._RESULT_TYPES = tuple(
                t for t in runner_module._RESULT_TYPES if t is not _CustomResult
            )

    def test_run_report_nested_records_serialise(self, tmp_path):
        report = _toy_instances()["RunReport"]
        path = tmp_path / "nested.json"
        save_results(path, "workload", [report])
        loaded = load_results(path)
        nested = loaded.results[0]["records"][0]
        assert nested["__type__"] == "ArenaEntry"
        assert nested["best_weight"] == 12.0


class TestSaveAndLoad:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "results.json"
        record = save_results(path, "table1", [_toy_row()], config={"n_samples": 64})
        assert isinstance(record, ExperimentRecord)
        loaded = load_results(path)
        assert loaded.experiment == "table1"
        assert loaded.config == {"n_samples": 64}
        assert loaded.result_type() == "Table1Row"
        assert loaded.results[0]["graph_name"] == "toy"
        assert loaded.version != ""

    def test_empty_results(self, tmp_path):
        path = tmp_path / "empty.json"
        save_results(path, "figure3", [])
        loaded = load_results(path)
        assert loaded.results == []
        assert loaded.result_type() is None

    def test_missing_fields_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"experiment": "x"}))
        with pytest.raises(ValidationError):
            load_results(path)

    def test_file_is_valid_json(self, tmp_path):
        path = tmp_path / "results.json"
        save_results(path, "ablation", [_toy_point()])
        payload = json.loads(path.read_text())
        assert payload["experiment"] == "ablation"
        assert payload["results"][0]["setting"] == "fair"
