"""Tests for experiment result persistence (repro.experiments.runner)."""

import json

import numpy as np
import pytest

from repro.experiments.ablations import AblationPoint
from repro.experiments.runner import (
    ExperimentRecord,
    load_results,
    results_to_jsonable,
    save_results,
)
from repro.experiments.table1 import Table1Row
from repro.utils.validation import ValidationError


def _toy_row():
    return Table1Row(
        graph_name="toy",
        n_vertices=5,
        n_edges=6,
        measured={"lif_gw": 5.0, "lif_tr": 4.0, "solver": 5.0, "random": 3.0},
        paper={"lif_gw": 5, "solver": 5, "lif_tr": 5, "random": 4, "reference": 5},
        is_surrogate=True,
    )


def _toy_point():
    return AblationPoint(
        setting="fair",
        mean_relative_cut=0.97,
        sem=0.01,
        per_graph=np.array([0.96, 0.98]),
        metadata={"circuit": "lif_gw"},
    )


class TestResultsToJsonable:
    def test_table1_row_serialised(self):
        payload = results_to_jsonable([_toy_row()])
        assert payload[0]["__type__"] == "Table1Row"
        assert payload[0]["measured"]["lif_gw"] == 5.0

    def test_numpy_arrays_become_lists(self):
        payload = results_to_jsonable([_toy_point()])
        assert payload[0]["per_graph"] == [0.96, 0.98]

    def test_rejects_unknown_types(self):
        with pytest.raises(ValidationError):
            results_to_jsonable([{"not": "a result"}])

    def test_json_round_trip(self):
        payload = results_to_jsonable([_toy_row(), _toy_row()])
        text = json.dumps(payload)
        assert json.loads(text) == payload


class TestSaveAndLoad:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "results.json"
        record = save_results(path, "table1", [_toy_row()], config={"n_samples": 64})
        assert isinstance(record, ExperimentRecord)
        loaded = load_results(path)
        assert loaded.experiment == "table1"
        assert loaded.config == {"n_samples": 64}
        assert loaded.result_type() == "Table1Row"
        assert loaded.results[0]["graph_name"] == "toy"
        assert loaded.version != ""

    def test_empty_results(self, tmp_path):
        path = tmp_path / "empty.json"
        save_results(path, "figure3", [])
        loaded = load_results(path)
        assert loaded.results == []
        assert loaded.result_type() is None

    def test_missing_fields_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"experiment": "x"}))
        with pytest.raises(ValidationError):
            load_results(path)

    def test_file_is_valid_json(self, tmp_path):
        path = tmp_path / "results.json"
        save_results(path, "ablation", [_toy_point()])
        payload = json.loads(path.read_text())
        assert payload["experiment"] == "ablation"
        assert payload["results"][0]["setting"] == "fair"
