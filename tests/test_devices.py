"""Tests for the stochastic device pools."""

import numpy as np
import pytest

from repro.devices.base import DevicePool, estimate_statistics
from repro.devices.bernoulli import BiasedCoinPool, FairCoinPool
from repro.devices.correlated import CorrelatedDevicePool
from repro.devices.drift import DriftingDevicePool
from repro.devices.telegraph import TelegraphNoisePool
from repro.utils.validation import ValidationError


ALL_POOLS = [
    lambda: FairCoinPool(8, seed=0),
    lambda: BiasedCoinPool(0.3, n_devices=8, seed=0),
    lambda: CorrelatedDevicePool(8, 0.4, seed=0),
    lambda: DriftingDevicePool(8, seed=0),
    lambda: TelegraphNoisePool(8, switch_up=0.3, seed=0),
]


class TestPoolInterface:
    @pytest.mark.parametrize("factory", ALL_POOLS)
    def test_sample_shape_and_values(self, factory):
        pool = factory()
        states = pool.sample(50)
        assert states.shape == (50, 8)
        assert states.dtype == np.int8
        assert set(np.unique(states)).issubset({0, 1})

    @pytest.mark.parametrize("factory", ALL_POOLS)
    def test_zero_steps(self, factory):
        assert factory().sample(0).shape == (0, 8)

    @pytest.mark.parametrize("factory", ALL_POOLS)
    def test_negative_steps_raises(self, factory):
        with pytest.raises(ValidationError):
            factory().sample(-1)

    @pytest.mark.parametrize("factory", ALL_POOLS)
    def test_sample_step(self, factory):
        assert factory().sample_step().shape == (8,)

    @pytest.mark.parametrize("factory", ALL_POOLS)
    def test_expected_mean_shape(self, factory):
        mean = factory().expected_mean()
        assert mean.shape == (8,)
        assert np.all((mean >= 0) & (mean <= 1))

    def test_pool_requires_devices(self):
        with pytest.raises(ValidationError):
            FairCoinPool(0)

    def test_abstract_base_not_instantiable(self):
        with pytest.raises(TypeError):
            DevicePool(4)  # type: ignore[abstract]


class TestFairCoinPool:
    def test_empirical_mean_near_half(self):
        stats = estimate_statistics(FairCoinPool(16, seed=1), n_steps=4000)
        assert stats.max_bias < 0.05

    def test_devices_independent(self):
        stats = estimate_statistics(FairCoinPool(10, seed=2), n_steps=4000)
        assert stats.max_cross_correlation < 0.08

    def test_reproducible(self):
        a = FairCoinPool(5, seed=7).sample(20)
        b = FairCoinPool(5, seed=7).sample(20)
        np.testing.assert_array_equal(a, b)

    def test_expected_covariance_diagonal(self):
        cov = FairCoinPool(4, seed=0).expected_covariance()
        np.testing.assert_allclose(cov, 0.25 * np.eye(4))


class TestBiasedCoinPool:
    def test_scalar_probability(self):
        pool = BiasedCoinPool(0.8, n_devices=6, seed=3)
        states = pool.sample(3000)
        assert abs(states.mean() - 0.8) < 0.03

    def test_per_device_probabilities(self):
        probs = np.array([0.1, 0.5, 0.9])
        pool = BiasedCoinPool(probs, seed=4)
        means = pool.sample(4000).mean(axis=0)
        np.testing.assert_allclose(means, probs, atol=0.05)

    def test_scalar_requires_n_devices(self):
        with pytest.raises(ValidationError):
            BiasedCoinPool(0.5)

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValidationError):
            BiasedCoinPool(np.array([0.5, 1.2]))

    def test_probabilities_property_copy(self):
        pool = BiasedCoinPool(np.array([0.2, 0.7]), seed=5)
        p = pool.probabilities
        p[0] = 0.0
        assert pool.probabilities[0] == 0.2


class TestCorrelatedPool:
    def test_target_correlation_achieved(self):
        pool = CorrelatedDevicePool(12, correlation=0.5, seed=6)
        stats = estimate_statistics(pool, n_steps=8000)
        off_diag = stats.covariance / 0.25
        np.fill_diagonal(off_diag, np.nan)
        mean_corr = np.nanmean(off_diag)
        assert abs(mean_corr - 0.5) < 0.08

    def test_zero_correlation_behaves_like_fair(self):
        pool = CorrelatedDevicePool(8, correlation=0.0, seed=7)
        stats = estimate_statistics(pool, n_steps=5000)
        assert stats.max_cross_correlation < 0.08

    def test_marginals_fair(self):
        pool = CorrelatedDevicePool(6, correlation=0.7, seed=8)
        stats = estimate_statistics(pool, n_steps=5000)
        assert stats.max_bias < 0.05

    def test_invalid_correlation_rejected(self):
        with pytest.raises(ValidationError):
            CorrelatedDevicePool(4, correlation=1.0)
        with pytest.raises(ValidationError):
            CorrelatedDevicePool(4, correlation=-0.2)

    def test_expected_covariance(self):
        cov = CorrelatedDevicePool(3, correlation=0.4, seed=0).expected_covariance()
        assert cov[0, 1] == pytest.approx(0.1)
        assert cov[0, 0] == pytest.approx(0.25)


class TestDriftingPool:
    def test_long_run_mean_near_target(self):
        pool = DriftingDevicePool(10, drift_rate=0.05, drift_scale=0.05, seed=9)
        states = pool.sample(5000)
        assert abs(states.mean() - 0.5) < 0.08

    def test_probabilities_drift_over_time(self):
        pool = DriftingDevicePool(4, drift_rate=0.0, drift_scale=0.3, seed=10)
        pool.sample(500)
        assert np.any(np.abs(pool.current_probabilities - 0.5) > 0.05)

    def test_reset(self):
        pool = DriftingDevicePool(4, drift_scale=0.5, seed=11)
        pool.sample(100)
        pool.reset()
        np.testing.assert_allclose(pool.current_probabilities, 0.5)

    def test_invalid_parameters(self):
        with pytest.raises(ValidationError):
            DriftingDevicePool(4, drift_rate=2.0)
        with pytest.raises(ValidationError):
            DriftingDevicePool(4, target_probability=1.0)


class TestTelegraphPool:
    def test_stationary_mean(self):
        pool = TelegraphNoisePool(8, switch_up=0.2, switch_down=0.2, seed=12)
        states = pool.sample(6000)
        assert abs(states.mean() - 0.5) < 0.06

    def test_asymmetric_switching_mean(self):
        pool = TelegraphNoisePool(8, switch_up=0.3, switch_down=0.1, seed=13)
        states = pool.sample(6000)
        # stationary P(1) = p_up / (p_up + p_down) = 0.75
        assert abs(states.mean() - 0.75) < 0.06

    def test_temporal_correlation_positive_for_slow_switching(self):
        pool = TelegraphNoisePool(1, switch_up=0.05, seed=14)
        states = pool.sample(4000)[:, 0].astype(float)
        lag1 = np.corrcoef(states[:-1], states[1:])[0, 1]
        assert lag1 > 0.5

    def test_lag1_autocorrelation_formula(self):
        pool = TelegraphNoisePool(2, switch_up=0.1, switch_down=0.3, seed=15)
        assert pool.lag1_autocorrelation() == pytest.approx(0.6)

    def test_never_switching_mean_reported_half(self):
        pool = TelegraphNoisePool(4, switch_up=0.0, switch_down=0.0, seed=16)
        np.testing.assert_allclose(pool.expected_mean(), 0.5)


class TestEstimateStatistics:
    def test_requires_two_steps(self):
        with pytest.raises(ValidationError):
            estimate_statistics(FairCoinPool(3, seed=0), n_steps=1)

    def test_single_device_covariance_2d(self):
        stats = estimate_statistics(FairCoinPool(1, seed=0), n_steps=100)
        assert stats.covariance.shape == (1, 1)
        assert stats.max_cross_correlation == 0.0
