"""Integration tests: the ``problems`` workload and ``repro solve --problem``.

Pins the PR's acceptance contract: a problem-suite workload runs through the
generic capability-routed executor (engine included), shards with
``--shards 2 --resume``, and the merged output is bit-identical to the
monolithic run; the CLI solve path runs end-to-end through the batched
engine with a passing value-preservation certificate.
"""

import dataclasses
import json
import os

import pytest

from repro.cli import main
from repro.utils.validation import ValidationError
from repro.workloads import Session, get_workload, run_workload
from repro.workloads.problems import default_problem_solvers

#: Cheap deterministic budgets shared by the tests below.
_FAST = dict(trials=2, samples=8, seed=0)


def _comparable(report):
    """Records + leaderboard with timing-dependent values stripped."""
    timing = {
        "elapsed_seconds", "samples_per_second", "engine_elapsed_seconds",
        "n_unit_blocks",
    }

    def scrub(value):
        if isinstance(value, dict):
            return {k: scrub(v) for k, v in value.items() if k not in timing}
        if isinstance(value, (list, tuple)):
            return [scrub(v) for v in value]
        return value

    records = [
        scrub({
            f.name: getattr(record, f.name)
            for f in dataclasses.fields(record)
        })
        for record in report.records
    ]
    return records, scrub(report.leaderboard)


class TestProblemsWorkload:
    def test_registered_with_defaults(self):
        workload = get_workload("problems")
        assert workload.execute is None  # generic executor => sharding free
        assert "problem" in workload.defaults

    def test_default_solvers_include_natives(self):
        assert "maxdicut_gw" in default_problem_solvers("maxdicut")
        assert "max2sat_gw" in default_problem_solvers("max2sat")
        assert "annealing" in default_problem_solvers("ising")
        assert "lif_gw" in default_problem_solvers("qubo")

    def test_runs_qubo_suite_with_engine_circuit(self):
        report = run_workload(
            "problems", problem="qubo", solvers=("lif_gw", "random", "annealing"),
            **_FAST,
        )
        assert len(report.records) == 9  # 3 instances x 3 solvers
        by_solver = {r.solver for r in report.records}
        assert by_solver == {"lif_gw", "random", "annealing"}
        # Batchable circuits ride the batched engine on compiled graphs too.
        assert all(r.used_engine for r in report.records if r.solver == "lif_gw")
        assert report.params["problem"] == "qubo"
        assert report.params["suite"] == "qubo-small"

    def test_kind_aliases_and_suite_mismatch(self):
        spec = get_workload("problems").build_spec({
            "problem": "2sat", "suite": "", "solvers": (), "trials": 2,
            "samples": 8, "max_seconds": None, "backend": "auto",
            "use_engine": True, "workers": 1, "seed": 0,
        })
        assert spec.graphs.label == "2sat-small"
        with pytest.raises(ValidationError, match="holds 'qubo' instances"):
            run_workload("problems", problem="dicut", suite="qubo-small", **_FAST)

    def test_incompatible_solver_rejected_at_spec_build(self):
        with pytest.raises(ValidationError, match="cannot solve a compiled"):
            run_workload(
                "problems", problem="qubo", solvers=("random", "max2sat_gw"),
                **_FAST,
            )

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValidationError, match="problem must be one of"):
            run_workload("problems", problem="tsp", **_FAST)


class TestShardedProblems:
    """Acceptance: sharded + resumed problem workloads merge bit-identically."""

    PARAMS = dict(
        problem="dicut", solvers=("random", "annealing", "maxdicut_gw"), **_FAST
    )

    @pytest.fixture(scope="class")
    def monolithic(self):
        return Session.from_workload("problems", **self.PARAMS).run()

    @pytest.mark.parametrize("shards", [2, 5])
    def test_sharded_equals_monolithic(self, shards, monolithic):
        sharded = Session.from_workload("problems", **self.PARAMS).run(shards=shards)
        assert _comparable(sharded) == _comparable(monolithic)

    def test_resume_completes_partial_checkpoints(self, tmp_path, monolithic):
        checkpoint_dir = str(tmp_path)
        first = Session.from_workload("problems", **self.PARAMS).run(
            shards=2, checkpoint_dir=checkpoint_dir
        )
        assert _comparable(first) == _comparable(monolithic)
        # Kill one shard's checkpoint; --resume re-runs only that shard.
        os.unlink(os.path.join(checkpoint_dir, "shard-0001.json"))
        resumed = Session.from_workload("problems", **self.PARAMS).run(
            shards=2, checkpoint_dir=checkpoint_dir, resume=True
        )
        assert _comparable(resumed) == _comparable(monolithic)
        assert resumed.metadata["distrib"]["resumed_shards"] == [0]


class TestSolveProblemCLI:
    def test_engine_solve_with_certificate(self, capsys):
        # The acceptance command: a problem solved end-to-end through the
        # batched engine with a passing value-preservation certificate.
        assert main([
            "solve", "--problem", "qubo", "--samples", "16", "--trials", "2",
            "--vertices", "10",
        ]) == 0
        out = capsys.readouterr().out
        assert "batched engine" in out
        assert "certificate: OK" in out
        assert "native qubo" in out

    @pytest.mark.parametrize("problem,solver", [
        ("dicut", "maxdicut_gw"), ("2sat", "max2sat_gw"), ("ising", "annealing"),
    ])
    def test_native_solvers_certify(self, problem, solver, capsys):
        assert main([
            "solve", "--problem", problem, "--solver", solver,
            "--samples", "8", "--vertices", "8",
        ]) == 0
        assert "certificate: OK" in capsys.readouterr().out

    def test_from_file_round_trip(self, tmp_path, capsys):
        from repro.problems import random_problem, save_problem

        path = tmp_path / "instance.json"
        save_problem(path, random_problem("2sat", seed=1, n_variables=6))
        out_path = tmp_path / "result.json"
        assert main([
            "--save", str(out_path), "solve", "--problem", "2sat",
            "--solver", "random", "--samples", "8", "--from", str(path),
        ]) == 0
        assert "certificate: OK" in capsys.readouterr().out
        payload = json.loads(out_path.read_text())
        assert payload["problem"]["kind"] == "max2sat"
        assert payload["certificate"]["max_abs_error"] < 1e-6

    def test_kind_mismatch_errors(self, tmp_path, capsys):
        from repro.problems import random_problem, save_problem

        path = tmp_path / "instance.json"
        save_problem(path, random_problem("qubo", seed=0, n_variables=6))
        assert main([
            "solve", "--problem", "2sat", "--from", str(path),
        ]) == 2
        assert "holds a 'qubo' instance" in capsys.readouterr().err

    def test_incompatible_solver_errors(self, capsys):
        assert main([
            "solve", "--problem", "qubo", "--solver", "maxdicut_gw",
        ]) == 2
        assert "cannot solve" in capsys.readouterr().err


class TestSolveProblemCLISharded:
    def test_run_problems_sharded_resume_cli(self, tmp_path, capsys):
        checkpoint = str(tmp_path / "ckpt")
        argv = [
            "run", "problems", "--param", "problem=2sat",
            "--param", "solvers=random,annealing", "--trials", "2",
            "--param", "samples=8", "--shards", "2",
            "--checkpoint-dir", checkpoint, "--resume",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "shards: 2" in out
        assert "Arena leaderboard" in out
        # Re-running with --resume skips every completed shard.
        assert main(argv) == 0
        assert "resumed 2 completed shard(s)" in capsys.readouterr().out
