"""Tests for spike/membrane-to-cut encoding."""

import numpy as np
import pytest

from repro.neurons.encoding import membrane_sign_assignments, spikes_to_assignments
from repro.utils.validation import ValidationError


class TestSpikesToAssignments:
    def test_mapping(self):
        spikes = np.array([[True, False], [False, True]])
        out = spikes_to_assignments(spikes)
        np.testing.assert_array_equal(out, [[1, -1], [-1, 1]])

    def test_dtype(self):
        out = spikes_to_assignments(np.zeros((3, 4), dtype=bool))
        assert out.dtype == np.int8

    def test_accepts_int_raster(self):
        out = spikes_to_assignments(np.array([[1, 0], [0, 0]]))
        np.testing.assert_array_equal(out, [[1, -1], [-1, -1]])

    def test_rejects_1d(self):
        with pytest.raises(ValidationError):
            spikes_to_assignments(np.zeros(4, dtype=bool))


class TestMembraneSignAssignments:
    def test_threshold_zero(self):
        potentials = np.array([[0.5, -0.1], [0.0, 2.0]])
        out = membrane_sign_assignments(potentials)
        np.testing.assert_array_equal(out, [[1, -1], [-1, 1]])

    def test_custom_threshold(self):
        potentials = np.array([[0.5, 1.5]])
        out = membrane_sign_assignments(potentials, threshold=1.0)
        np.testing.assert_array_equal(out, [[-1, 1]])

    def test_rejects_nonfinite_threshold(self):
        with pytest.raises(ValidationError):
            membrane_sign_assignments(np.zeros((1, 2)), threshold=float("inf"))

    def test_rejects_1d(self):
        with pytest.raises(ValidationError):
            membrane_sign_assignments(np.zeros(3))
