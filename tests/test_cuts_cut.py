"""Tests for repro.cuts.cut."""

import numpy as np
import pytest

from repro.cuts.cut import (
    Cut,
    bits_from_spins,
    cut_weight,
    cut_weights_batch,
    running_best_cuts,
    spins_from_bits,
)
from repro.graphs.generators import complete_bipartite, erdos_renyi
from repro.graphs.graph import Graph
from repro.utils.validation import ValidationError


class TestBitSpinConversion:
    def test_spins_from_bits(self):
        np.testing.assert_array_equal(spins_from_bits(np.array([0, 1, 0])), [-1, 1, -1])

    def test_bits_from_spins(self):
        np.testing.assert_array_equal(bits_from_spins(np.array([-1, 1, 1])), [0, 1, 1])

    def test_round_trip(self):
        bits = np.array([0, 1, 1, 0, 1])
        np.testing.assert_array_equal(bits_from_spins(spins_from_bits(bits)), bits)

    def test_2d_arrays(self):
        bits = np.array([[0, 1], [1, 0]])
        spins = spins_from_bits(bits)
        assert spins.shape == (2, 2)


class TestCutWeight:
    def test_triangle(self, triangle):
        # any bipartition of K3 cuts exactly 2 edges
        assert cut_weight(triangle, np.array([1, 1, -1])) == 2.0
        assert cut_weight(triangle, np.array([1, -1, -1])) == 2.0

    def test_all_same_side_zero(self, triangle):
        assert cut_weight(triangle, np.array([1, 1, 1])) == 0.0

    def test_bipartite_full_cut(self, small_bipartite):
        assignment = np.array([1, 1, 1, -1, -1, -1, -1])
        assert cut_weight(small_bipartite, assignment) == small_bipartite.total_weight

    def test_weighted(self, weighted_graph):
        # cut {0,2} vs {1,3}: edges (0,1)=2, (1,2)=0.5, (2,3)=3, (0,3)=1 cross; (0,2)=1.5 does not
        assignment = np.array([1, -1, 1, -1])
        assert cut_weight(weighted_graph, assignment) == pytest.approx(6.5)

    def test_matches_quadratic_form(self, small_er_graph, rng):
        A = small_er_graph.adjacency()
        v = np.where(rng.random(small_er_graph.n_vertices) < 0.5, 1, -1)
        quadratic = 0.25 * float(np.sum(A * (1 - np.outer(v, v))))
        assert cut_weight(small_er_graph, v) == pytest.approx(quadratic)

    def test_wrong_length_raises(self, triangle):
        with pytest.raises(ValidationError):
            cut_weight(triangle, np.array([1, -1]))

    def test_non_spin_raises(self, triangle):
        with pytest.raises(ValidationError):
            cut_weight(triangle, np.array([1, 0, -1]))

    def test_empty_graph(self, empty_graph):
        assert cut_weight(empty_graph, np.ones(5, dtype=int)) == 0.0


class TestCutWeightsBatch:
    def test_matches_single(self, small_er_graph, rng):
        assignments = np.where(rng.random((20, small_er_graph.n_vertices)) < 0.5, 1, -1)
        batch = cut_weights_batch(small_er_graph, assignments)
        singles = [cut_weight(small_er_graph, a) for a in assignments]
        np.testing.assert_allclose(batch, singles)

    def test_1d_input(self, triangle):
        out = cut_weights_batch(triangle, np.array([1, -1, 1]))
        assert out.shape == (1,)

    def test_shape_mismatch_raises(self, triangle):
        with pytest.raises(ValidationError):
            cut_weights_batch(triangle, np.ones((3, 5), dtype=int))

    def test_invalid_values_raise(self, triangle):
        with pytest.raises(ValidationError):
            cut_weights_batch(triangle, np.zeros((2, 3), dtype=int))

    def test_zero_samples(self, triangle):
        out = cut_weights_batch(triangle, np.empty((0, 3), dtype=np.int8))
        assert out.shape == (0,)

    def test_empty_graph(self, empty_graph):
        out = cut_weights_batch(empty_graph, np.ones((4, 5), dtype=int))
        np.testing.assert_array_equal(out, np.zeros(4))


class TestCutClass:
    def test_from_assignment(self, triangle):
        c = Cut.from_assignment(triangle, np.array([1, 1, -1]))
        assert c.weight == 2.0
        assert c.graph_name == "triangle"
        assert c.n_vertices == 3

    def test_complement_same_weight(self, small_er_graph, rng):
        v = np.where(rng.random(small_er_graph.n_vertices) < 0.5, 1, -1)
        c = Cut.from_assignment(small_er_graph, v)
        assert c.complement().weight == c.weight
        np.testing.assert_array_equal(c.complement().assignment, -c.assignment)

    def test_side_sizes(self, triangle):
        c = Cut.from_assignment(triangle, np.array([1, 1, -1]))
        assert c.side_sizes == (1, 2)

    def test_partition(self, triangle):
        c = Cut.from_assignment(triangle, np.array([1, -1, -1]))
        negative, positive = c.partition()
        np.testing.assert_array_equal(negative, [1, 2])
        np.testing.assert_array_equal(positive, [0])

    def test_ordering(self, triangle):
        small = Cut.from_assignment(triangle, np.array([1, 1, 1]))
        big = Cut.from_assignment(triangle, np.array([1, 1, -1]))
        assert small < big
        assert max(small, big) is big

    def test_equality_and_hash(self, triangle):
        a = Cut.from_assignment(triangle, np.array([1, 1, -1]))
        b = Cut.from_assignment(triangle, np.array([1, 1, -1]))
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality_with_other_type(self, triangle):
        c = Cut.from_assignment(triangle, np.array([1, 1, -1]))
        assert (c == 42) is False or (c != 42)


class TestRunningBest:
    def test_monotone(self):
        out = running_best_cuts(np.array([3.0, 1.0, 5.0, 2.0]))
        np.testing.assert_array_equal(out, [3.0, 3.0, 5.0, 5.0])

    def test_rejects_2d(self):
        with pytest.raises(ValidationError):
            running_best_cuts(np.zeros((2, 2)))

    def test_empty(self):
        assert running_best_cuts(np.zeros(0)).shape == (0,)
