"""Shared fixtures for the test suite.

Fixtures provide small, fast graphs with known structure (and, where
feasible, known maximum cuts) so the approximation algorithms and circuits
can be validated against ground truth.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.generators import (
    complete_bipartite,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    path_graph,
)
from repro.graphs.graph import Graph


@pytest.fixture
def rng():
    """A deterministic generator for test-local randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def triangle():
    """K3: maximum cut is 2."""
    return complete_graph(3, name="triangle")


@pytest.fixture
def square_cycle():
    """C4 (bipartite): maximum cut is 4."""
    return cycle_graph(4, name="c4")


@pytest.fixture
def five_cycle():
    """C5 (odd cycle): maximum cut is 4."""
    return cycle_graph(5, name="c5")


@pytest.fixture
def small_bipartite():
    """K_{3,4}: maximum cut is 12 (all edges)."""
    return complete_bipartite(3, 4, name="k34")


@pytest.fixture
def small_er_graph():
    """A fixed 16-vertex Erdős–Rényi graph, small enough for exact MAXCUT."""
    return erdos_renyi(16, 0.4, seed=777, name="er16")


@pytest.fixture
def medium_er_graph():
    """A fixed 40-vertex Erdős–Rényi graph for circuit-level tests."""
    return erdos_renyi(40, 0.25, seed=2024, name="er40")


@pytest.fixture
def weighted_graph():
    """A small weighted graph with non-uniform weights."""
    edges = [(0, 1, 2.0), (1, 2, 0.5), (2, 3, 3.0), (0, 3, 1.0), (0, 2, 1.5)]
    return Graph(4, edges, name="weighted4")


@pytest.fixture
def path_of_three():
    """P3: 3 vertices, 2 edges, maximum cut 2."""
    return path_graph(3, name="p3")


@pytest.fixture
def empty_graph():
    """Graph with vertices but no edges."""
    return Graph(5, [], name="empty5")
