"""Tests for repro.spectral: power iteration, Lanczos, and the Trevisan algorithm."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.cuts.exact import exact_maxcut_value
from repro.graphs.generators import complete_bipartite, cycle_graph, erdos_renyi
from repro.spectral.lanczos import lanczos_extreme_eigenpair, lanczos_tridiagonalize
from repro.spectral.power_iteration import (
    minimum_eigenvector_shifted,
    power_iteration,
    rayleigh_quotient,
)
from repro.spectral.trevisan import (
    minimum_eigenvector,
    trevisan_simple_spectral,
    trevisan_sweep_cut,
)
from repro.utils.validation import ValidationError


def _random_symmetric(n, rng):
    A = rng.standard_normal((n, n))
    return 0.5 * (A + A.T)


class TestRayleighQuotient:
    def test_eigenvector_gives_eigenvalue(self, rng):
        M = _random_symmetric(6, rng)
        eigenvalues, eigenvectors = np.linalg.eigh(M)
        assert rayleigh_quotient(M, eigenvectors[:, 2]) == pytest.approx(eigenvalues[2])

    def test_bounded_by_spectrum(self, rng):
        M = _random_symmetric(8, rng)
        eigenvalues = np.linalg.eigvalsh(M)
        v = rng.standard_normal(8)
        rq = rayleigh_quotient(M, v)
        assert eigenvalues[0] - 1e-9 <= rq <= eigenvalues[-1] + 1e-9

    def test_zero_vector_raises(self):
        with pytest.raises(ValidationError):
            rayleigh_quotient(np.eye(3), np.zeros(3))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValidationError):
            rayleigh_quotient(np.eye(3), np.ones(4))


class TestPowerIteration:
    def test_dominant_eigenvalue(self, rng):
        M = _random_symmetric(10, rng)
        # make the dominant eigenvalue the largest-magnitude one by shifting
        M = M + 20.0 * np.eye(10)
        result = power_iteration(M, seed=1)
        assert result.converged
        assert result.eigenvalue == pytest.approx(np.linalg.eigvalsh(M)[-1], rel=1e-6)

    def test_sparse_input(self, rng):
        M = sp.csr_matrix(np.diag([1.0, 2.0, 10.0]))
        result = power_iteration(M, seed=2)
        assert result.eigenvalue == pytest.approx(10.0, rel=1e-8)

    def test_zero_matrix(self):
        result = power_iteration(np.zeros((4, 4)), seed=3)
        assert result.eigenvalue == pytest.approx(0.0)

    def test_empty_matrix(self):
        result = power_iteration(np.zeros((0, 0)))
        assert result.converged

    def test_rejects_rectangular(self):
        with pytest.raises(ValidationError):
            power_iteration(np.zeros((2, 3)))

    def test_residual_small_when_converged(self, rng):
        M = np.diag([1.0, 3.0, 9.0])
        result = power_iteration(M, seed=4)
        assert result.residual < 1e-8


class TestShiftedMinimum:
    def test_minimum_eigenvalue(self, rng):
        M = _random_symmetric(12, rng)
        result = minimum_eigenvector_shifted(M, seed=5)
        expected = np.linalg.eigvalsh(M)[0]
        assert result.eigenvalue == pytest.approx(expected, rel=1e-5, abs=1e-6)

    def test_eigenvector_residual(self, rng):
        M = _random_symmetric(9, rng)
        result = minimum_eigenvector_shifted(M, seed=6)
        residual = np.linalg.norm(M @ result.eigenvector - result.eigenvalue * result.eigenvector)
        assert residual < 1e-6

    def test_diagonal_matrix(self):
        M = np.diag([5.0, -2.0, 3.0])
        result = minimum_eigenvector_shifted(M, seed=7)
        assert result.eigenvalue == pytest.approx(-2.0, abs=1e-8)
        assert abs(result.eigenvector[1]) == pytest.approx(1.0, abs=1e-6)


class TestLanczos:
    def test_tridiagonal_similarity(self, rng):
        M = _random_symmetric(15, rng)
        result = lanczos_tridiagonalize(M, n_steps=15, seed=8)
        # full Krylov space: eigenvalues of T match eigenvalues of M
        np.testing.assert_allclose(
            np.sort(np.linalg.eigvalsh(result.tridiagonal)),
            np.sort(np.linalg.eigvalsh(M)),
            atol=1e-6,
        )

    def test_basis_orthonormal(self, rng):
        M = _random_symmetric(20, rng)
        result = lanczos_tridiagonalize(M, n_steps=12, seed=9)
        Q = result.basis
        np.testing.assert_allclose(Q.T @ Q, np.eye(Q.shape[1]), atol=1e-8)

    def test_extreme_eigenpair_smallest(self, rng):
        M = _random_symmetric(25, rng)
        value, vector = lanczos_extreme_eigenpair(M, which="smallest", n_steps=25, seed=10)
        assert value == pytest.approx(np.linalg.eigvalsh(M)[0], abs=1e-6)
        residual = np.linalg.norm(M @ vector - value * vector)
        assert residual < 1e-5

    def test_extreme_eigenpair_largest(self, rng):
        M = _random_symmetric(18, rng)
        value, _ = lanczos_extreme_eigenpair(M, which="largest", n_steps=18, seed=11)
        assert value == pytest.approx(np.linalg.eigvalsh(M)[-1], abs=1e-6)

    def test_invalid_which_raises(self):
        with pytest.raises(ValidationError):
            lanczos_extreme_eigenpair(np.eye(3), which="middle")

    def test_early_breakdown_on_identity(self):
        result = lanczos_tridiagonalize(np.eye(6), n_steps=6, seed=12)
        # Krylov space of the identity is 1-dimensional
        assert result.alphas.shape[0] == 1

    def test_empty_matrix(self):
        result = lanczos_tridiagonalize(np.zeros((0, 0)))
        assert result.alphas.size == 0


class TestMinimumEigenvector:
    @pytest.mark.parametrize("method", ["dense", "lanczos", "arpack"])
    def test_methods_agree(self, method):
        g = erdos_renyi(30, 0.3, seed=13)
        dense_val, _ = minimum_eigenvector(g, method="dense")
        val, vec = minimum_eigenvector(g, method=method, seed=14)
        assert val == pytest.approx(dense_val, abs=1e-6)
        # residual check against the normalized adjacency
        N = g.normalized_adjacency()
        assert np.linalg.norm(N @ vec - val * vec) < 1e-5

    def test_invalid_method_raises(self, triangle):
        with pytest.raises(ValidationError):
            minimum_eigenvector(triangle, method="magic")

    def test_empty_graph(self):
        from repro.graphs.graph import Graph

        value, vector = minimum_eigenvector(Graph(0))
        assert value == 0.0 and vector.size == 0


class TestTrevisanAlgorithm:
    def test_bipartite_graph_exact(self, small_bipartite):
        result = trevisan_simple_spectral(small_bipartite)
        assert result.cut.weight == small_bipartite.total_weight
        # minimum eigenvalue of the normalized adjacency of a bipartite graph is -1
        assert result.eigenvalue == pytest.approx(-1.0, abs=1e-8)

    def test_even_cycle_exact(self, square_cycle):
        assert trevisan_simple_spectral(square_cycle).cut.weight == 4.0

    def test_beats_half_total_weight(self):
        g = erdos_renyi(40, 0.3, seed=15)
        cut = trevisan_simple_spectral(g).cut
        assert cut.weight >= 0.5 * g.total_weight * 0.9

    def test_below_optimum_on_small_graph(self, small_er_graph):
        cut = trevisan_simple_spectral(small_er_graph).cut
        assert cut.weight <= exact_maxcut_value(small_er_graph) + 1e-9

    def test_sweep_cut_at_least_simple(self):
        for seed in (1, 2, 3):
            g = erdos_renyi(30, 0.3, seed=seed)
            simple = trevisan_simple_spectral(g).cut.weight
            sweep = trevisan_sweep_cut(g).cut.weight
            assert sweep >= simple - 1e-9

    def test_empty_graph(self):
        from repro.graphs.graph import Graph

        result = trevisan_simple_spectral(Graph(0))
        assert result.cut.weight == 0.0
