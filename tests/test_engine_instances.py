"""Tests for graph-axis batching (repro.engine.instances).

The contract under test: fusing same-shape instances into one InstanceBlock
kernel invocation is invisible in the outputs — every fused result is
bit-identical to solving its request alone — and every incompatible mix
falls back to per-request solves rather than erroring, again with
identical results.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import LIFGWCircuit, LIFGWConfig
from repro.engine import (
    EarlyStopConfig,
    InstanceBlock,
    SolveRequest,
    fusion_compatible,
    solve,
    solve_instance_block,
)
from repro.graphs.generators import erdos_renyi
from repro.utils.validation import ValidationError


def _requests(count=3, n=24, trials=2, samples=6, circuit="lif_gw", **kwargs):
    graphs = [erdos_renyi(n, 0.5, seed=100 + i) for i in range(count)]
    return [
        SolveRequest(
            circuit=circuit, graph=graph, n_trials=trials, n_samples=samples,
            seed=7 + i, **kwargs,
        )
        for i, graph in enumerate(graphs)
    ]


def _assert_identical(fused, solo):
    assert np.array_equal(fused.trajectories, solo.trajectories)
    assert np.array_equal(fused.trial_best_weights, solo.trial_best_weights)
    assert np.array_equal(
        fused.trial_best_assignments, solo.trial_best_assignments
    )
    assert fused.best_weight == solo.best_weight


class TestFusedEqualsPerInstance:
    def test_membrane_readout_bitwise_identical(self):
        requests = _requests()
        fused = solve_instance_block(requests)
        assert len(fused) == len(requests)
        for result, request in zip(fused, requests):
            block = result.metadata["instance_block"]
            assert block["size"] == len(requests)
            assert block["fused_trials"] == sum(r.n_trials for r in requests)
            _assert_identical(result, solve(request))

    def test_spike_readout_bitwise_identical(self):
        graphs = [erdos_renyi(20, 0.5, seed=200 + i) for i in range(3)]
        config = LIFGWConfig(readout="spike")
        requests = [
            SolveRequest(
                circuit=LIFGWCircuit(graph, config=config, seed=30 + i),
                graph=graph, n_trials=2, n_samples=5, seed=30 + i,
            )
            for i, graph in enumerate(graphs)
        ]
        fused = solve_instance_block(requests)
        assert all(r.metadata.get("instance_block") for r in fused)
        for result, request in zip(fused, requests):
            _assert_identical(result, solve(request))

    def test_mixed_trial_counts_fuse(self):
        graphs = [erdos_renyi(24, 0.5, seed=300 + i) for i in range(3)]
        requests = [
            SolveRequest(
                circuit="lif_gw", graph=graph, n_trials=trials, n_samples=6,
                seed=40 + i,
            )
            for i, (graph, trials) in enumerate(zip(graphs, (1, 3, 2)))
        ]
        fused = solve_instance_block(requests)
        assert fused[0].metadata["instance_block"]["fused_trials"] == 6
        for result, request in zip(fused, requests):
            _assert_identical(result, solve(request))

    def test_record_assignments_survive_fusion(self):
        requests = _requests(count=2, record_assignments=True)
        fused = solve_instance_block(requests)
        for result, request in zip(fused, requests):
            solo = solve(request)
            assert result.assignments is not None
            assert np.array_equal(result.assignments, solo.assignments)


class TestFallbacks:
    def _assert_fallback_identical(self, requests):
        results = solve_instance_block(requests)
        assert len(results) == len(requests)
        for result, request in zip(results, requests):
            assert not result.metadata.get("instance_block")
            _assert_identical(result, solve(request))

    def test_shape_mismatch_falls_back(self):
        small = _requests(count=1, n=20)
        large = _requests(count=1, n=28)
        self._assert_fallback_identical(small + large)

    def test_early_stop_falls_back(self):
        self._assert_fallback_identical(
            _requests(count=2, early_stop=EarlyStopConfig(patience=2))
        )

    def test_deadline_falls_back(self):
        self._assert_fallback_identical(
            _requests(count=2, deadline_seconds=60.0)
        )

    def test_plasticity_readout_falls_back(self):
        # lif_tr's plasticity read-out needs per-step weight updates, which
        # the lock-step fused kernel cannot interleave.
        self._assert_fallback_identical(_requests(count=2, circuit="lif_tr"))

    def test_memory_cap_falls_back(self):
        self._assert_fallback_identical(_requests(count=2, max_block_bytes=64))


class TestFusionCompatible:
    def test_compatible_reports_reason(self):
        ok, reason = fusion_compatible(_requests())
        assert ok
        assert reason == "compatible"

    def test_incompatible_reasons_are_specific(self):
        base = _requests(count=1)
        cases = [
            (base + _requests(count=1, n=30), "execution shape"),
            (_requests(count=2, early_stop=EarlyStopConfig()), "early_stop"),
            (_requests(count=2, deadline_seconds=5.0), "deadline_seconds"),
            (_requests(count=2, trials=0), "n_trials"),
        ]
        for requests, fragment in cases:
            ok, reason = fusion_compatible(requests)
            assert not ok
            assert fragment in reason

    def test_block_build_raises_on_incompatible(self):
        requests = _requests(count=1, n=20) + _requests(count=1, n=28)
        with pytest.raises(ValidationError, match="cannot fuse"):
            InstanceBlock.build(requests)

    def test_block_build_raises_over_memory_cap(self):
        with pytest.raises(ValidationError, match="block cap"):
            InstanceBlock.build(_requests(count=2, max_block_bytes=64))


class TestEdgeCases:
    def test_empty_request_list(self):
        assert solve_instance_block([]) == []

    def test_single_request_matches_solve(self):
        (request,) = _requests(count=1)
        (result,) = solve_instance_block([request])
        _assert_identical(result, solve(request))

    def test_results_positionally_aligned(self):
        requests = _requests(count=4)
        results = solve_instance_block(requests)
        for index, result in enumerate(results):
            assert result.metadata["instance_block"]["index"] == index
