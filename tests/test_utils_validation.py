"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    ValidationError,
    check_binary_vector,
    check_finite,
    check_non_negative,
    check_positive,
    check_probability,
    check_spin_vector,
    check_square_matrix,
    check_symmetric,
    check_vector_length,
)


class TestScalarChecks:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_valid_probability(self, value):
        assert check_probability(value) == value

    @pytest.mark.parametrize("value", [-0.1, 1.1, float("nan"), float("inf")])
    def test_invalid_probability(self, value):
        with pytest.raises(ValidationError):
            check_probability(value)

    def test_positive_ok(self):
        assert check_positive(2.5) == 2.5

    @pytest.mark.parametrize("value", [0.0, -1.0, float("nan")])
    def test_positive_rejects(self, value):
        with pytest.raises(ValidationError):
            check_positive(value)

    def test_non_negative_ok(self):
        assert check_non_negative(0.0) == 0.0

    def test_non_negative_rejects(self):
        with pytest.raises(ValidationError):
            check_non_negative(-0.001)

    def test_error_is_value_error(self):
        assert issubclass(ValidationError, ValueError)


class TestMatrixChecks:
    def test_square_ok(self):
        m = np.eye(3)
        assert check_square_matrix(m).shape == (3, 3)

    def test_square_rejects_rectangular(self):
        with pytest.raises(ValidationError):
            check_square_matrix(np.zeros((2, 3)))

    def test_square_rejects_1d(self):
        with pytest.raises(ValidationError):
            check_square_matrix(np.zeros(4))

    def test_symmetric_ok(self):
        m = np.array([[1.0, 2.0], [2.0, 3.0]])
        check_symmetric(m)

    def test_symmetric_rejects(self):
        with pytest.raises(ValidationError):
            check_symmetric(np.array([[1.0, 2.0], [0.0, 3.0]]))

    def test_finite_rejects_nan(self):
        with pytest.raises(ValidationError):
            check_finite(np.array([1.0, np.nan]))

    def test_finite_ok(self):
        check_finite(np.array([1.0, 2.0]))


class TestVectorChecks:
    def test_vector_length_ok(self):
        v = check_vector_length(np.arange(4), 4)
        assert v.shape == (4,)

    def test_vector_length_mismatch(self):
        with pytest.raises(ValidationError):
            check_vector_length(np.arange(4), 5)

    def test_vector_rejects_2d(self):
        with pytest.raises(ValidationError):
            check_vector_length(np.zeros((2, 2)))

    def test_spin_vector_ok(self):
        out = check_spin_vector(np.array([1, -1, 1]))
        assert out.dtype == np.int8

    def test_spin_vector_rejects_zero(self):
        with pytest.raises(ValidationError):
            check_spin_vector(np.array([1, 0, -1]))

    def test_spin_vector_rejects_other_values(self):
        with pytest.raises(ValidationError):
            check_spin_vector(np.array([2, -1]))

    def test_binary_vector_ok(self):
        out = check_binary_vector(np.array([0, 1, 1]))
        assert out.dtype == np.int8

    def test_binary_vector_rejects_spin(self):
        with pytest.raises(ValidationError):
            check_binary_vector(np.array([-1, 1]))
