"""Tests for repro.utils.timers and repro.utils.logging."""

import logging
import time

import pytest

from repro.utils.logging import configure_logging, get_logger
from repro.utils.timers import Timer, time_call, timed


class TestTimer:
    def test_context_manager_accumulates(self):
        t = Timer()
        with t:
            time.sleep(0.001)
        assert t.elapsed > 0.0
        assert t.n_intervals == 1

    def test_multiple_intervals(self):
        t = Timer()
        for _ in range(3):
            with t:
                pass
        assert t.n_intervals == 3
        assert t.mean_interval >= 0.0

    def test_start_twice_raises(self):
        t = Timer().start()
        with pytest.raises(RuntimeError):
            t.start()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_reset(self):
        t = Timer()
        with t:
            pass
        t.reset()
        assert t.elapsed == 0.0
        assert t.n_intervals == 0

    def test_running_flag(self):
        t = Timer()
        assert not t.running
        t.start()
        assert t.running
        t.stop()
        assert not t.running

    def test_mean_interval_zero_when_empty(self):
        assert Timer().mean_interval == 0.0


class TestTimedAndTimeCall:
    def test_timed_records_key(self):
        store = {}
        with timed(store, "phase"):
            pass
        assert "phase" in store and store["phase"] >= 0.0

    def test_timed_accumulates(self):
        store = {}
        for _ in range(2):
            with timed(store, "phase"):
                pass
        assert store["phase"] >= 0.0

    def test_time_call_returns_result(self):
        result, elapsed = time_call(lambda: 7)
        assert result == 7
        assert elapsed >= 0.0


class TestLogging:
    def test_get_logger_namespace(self):
        assert get_logger("sdp").name == "repro.sdp"
        assert get_logger().name == "repro"
        assert get_logger("repro.circuits").name == "repro.circuits"

    def test_configure_logging_idempotent(self):
        logger = configure_logging(level=logging.WARNING)
        n_handlers = len(logger.handlers)
        logger2 = configure_logging(level=logging.WARNING)
        assert len(logger2.handlers) == n_handlers
