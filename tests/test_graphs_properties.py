"""Tests for repro.graphs.properties."""

import pytest

from repro.graphs.generators import complete_bipartite, complete_graph, cycle_graph, erdos_renyi
from repro.graphs.graph import Graph
from repro.graphs.properties import (
    connected_components,
    degree_statistics,
    graph_summary,
    is_bipartite,
    is_connected,
)


class TestConnectedComponents:
    def test_single_component(self, triangle):
        assert len(connected_components(triangle)) == 1

    def test_multiple_components(self):
        # two 2-vertex components plus two singletons
        g = Graph(6, [(0, 1), (2, 3)])
        components = connected_components(g)
        assert len(components) == 4
        sizes = sorted(len(c) for c in components)
        assert sizes == [1, 1, 2, 2]

    def test_all_isolated(self, empty_graph):
        assert len(connected_components(empty_graph)) == empty_graph.n_vertices

    def test_is_connected_true(self, five_cycle):
        assert is_connected(five_cycle)

    def test_is_connected_false(self, empty_graph):
        assert not is_connected(empty_graph)

    def test_empty_graph_not_connected(self):
        assert not is_connected(Graph(0))


class TestBipartiteness:
    def test_even_cycle_bipartite(self, square_cycle):
        assert is_bipartite(square_cycle)

    def test_odd_cycle_not_bipartite(self, five_cycle):
        assert not is_bipartite(five_cycle)

    def test_complete_bipartite(self):
        assert is_bipartite(complete_bipartite(4, 5))

    def test_triangle_not_bipartite(self, triangle):
        assert not is_bipartite(triangle)

    def test_edgeless_bipartite(self, empty_graph):
        assert is_bipartite(empty_graph)


class TestDegreeStatistics:
    def test_regular_graph(self):
        stats = degree_statistics(cycle_graph(10))
        assert stats.minimum == stats.maximum == stats.mean == 2.0
        assert stats.std == 0.0
        assert stats.n_isolated == 0

    def test_isolated_counted(self):
        g = Graph(4, [(0, 1)])
        assert degree_statistics(g).n_isolated == 2

    def test_empty_graph(self):
        stats = degree_statistics(Graph(0))
        assert stats.mean == 0.0

    def test_complete_graph(self):
        stats = degree_statistics(complete_graph(5))
        assert stats.mean == 4.0


class TestGraphSummary:
    def test_keys_present(self, small_er_graph):
        summary = graph_summary(small_er_graph)
        for key in ("name", "n_vertices", "n_edges", "density", "connected", "degree_mean"):
            assert key in summary

    def test_values_consistent(self, triangle):
        summary = graph_summary(triangle)
        assert summary["n_vertices"] == 3
        assert summary["n_edges"] == 3
        assert summary["density"] == pytest.approx(1.0)
        assert summary["connected"] is True

    def test_er_summary(self):
        g = erdos_renyi(50, 0.2, seed=1)
        summary = graph_summary(g)
        assert summary["n_edges"] == g.n_edges
