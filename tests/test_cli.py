"""Tests for the command-line interface (python -m repro)."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.command == "solve"
        assert args.solver == "lif_gw"

    def test_unknown_solver_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "--solver", "quantum"])

    def test_figure4_graph_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure4", "--graphs", "not-a-graph"])


class TestCommands:
    def test_graphs_listing(self, capsys):
        assert main(["graphs"]) == 0
        out = capsys.readouterr().out
        assert "hamming6-2" in out
        assert "johnson16-2-4" in out

    def test_solve_random_on_er(self, capsys):
        code = main(["--seed", "1", "solve", "--solver", "random", "--er", "20", "0.3",
                     "--samples", "32"])
        assert code == 0
        out = capsys.readouterr().out
        assert "cut weight" in out

    def test_solve_trevisan_on_registry_graph(self, capsys):
        code = main(["solve", "--solver", "trevisan", "--graph", "road-chesapeake",
                     "--samples", "8"])
        assert code == 0
        out = capsys.readouterr().out
        assert "road-chesapeake" in out

    def test_solve_lif_gw_small(self, capsys):
        code = main(["--seed", "2", "solve", "--solver", "lif_gw", "--er", "14", "0.4",
                     "--samples", "32"])
        assert code == 0
        assert "lif_gw" in capsys.readouterr().out

    def test_table1_with_save(self, tmp_path, capsys):
        out_file = tmp_path / "table1.json"
        code = main([
            "--seed", "3", "--save", str(out_file),
            "table1", "--graphs", "road-chesapeake", "--samples", "32",
        ])
        assert code == 0
        assert out_file.exists()
        payload = json.loads(out_file.read_text())
        assert payload["experiment"] == "table1"
        assert "road-chesapeake" in capsys.readouterr().out

    def test_figure3_with_plot(self, capsys):
        code = main([
            "--seed", "4",
            "figure3", "--sizes", "12", "--probabilities", "0.4",
            "--graphs-per-cell", "1", "--samples", "16", "--plot",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "G(n=12" in out
        assert "(log x)" in out

    def test_figure4_single_graph(self, capsys):
        code = main([
            "--seed", "5",
            "figure4", "--graphs", "eco-stmarks", "--samples", "16",
        ])
        assert code == 0
        assert "eco-stmarks" in capsys.readouterr().out

    def test_ablation_rank(self, capsys):
        code = main([
            "--seed", "6",
            "ablation", "--kind", "rank", "--vertices", "16", "--samples", "16",
        ])
        assert code == 0
        assert "rank_4" in capsys.readouterr().out

    def test_solve_from_edge_list_file(self, tmp_path, capsys):
        graph_file = tmp_path / "toy.txt"
        graph_file.write_text("0 1\n1 2\n2 0\n")
        code = main(["solve", "--solver", "random", "--graph", str(graph_file), "--samples", "8"])
        assert code == 0
        assert "toy" in capsys.readouterr().out
