"""Tests for the command-line interface (python -m repro)."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.command == "solve"
        assert args.solver == "lif_gw"

    def test_unknown_solver_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "--solver", "quantum"])

    def test_figure4_graph_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure4", "--graphs", "not-a-graph"])


class TestCommands:
    def test_graphs_listing(self, capsys):
        assert main(["graphs"]) == 0
        out = capsys.readouterr().out
        assert "hamming6-2" in out
        assert "johnson16-2-4" in out

    def test_solve_random_on_er(self, capsys):
        code = main(["--seed", "1", "solve", "--solver", "random", "--er", "20", "0.3",
                     "--samples", "32"])
        assert code == 0
        out = capsys.readouterr().out
        assert "cut weight" in out

    def test_solve_trevisan_on_registry_graph(self, capsys):
        code = main(["solve", "--solver", "trevisan", "--graph", "road-chesapeake",
                     "--samples", "8"])
        assert code == 0
        out = capsys.readouterr().out
        assert "road-chesapeake" in out

    def test_solve_lif_gw_small(self, capsys):
        code = main(["--seed", "2", "solve", "--solver", "lif_gw", "--er", "14", "0.4",
                     "--samples", "32"])
        assert code == 0
        assert "lif_gw" in capsys.readouterr().out

    def test_table1_with_save(self, tmp_path, capsys):
        out_file = tmp_path / "table1.json"
        code = main([
            "--seed", "3", "--save", str(out_file),
            "table1", "--graphs", "road-chesapeake", "--samples", "32",
        ])
        assert code == 0
        assert out_file.exists()
        payload = json.loads(out_file.read_text())
        assert payload["experiment"] == "table1"
        assert "road-chesapeake" in capsys.readouterr().out

    def test_figure3_with_plot(self, capsys):
        code = main([
            "--seed", "4",
            "figure3", "--sizes", "12", "--probabilities", "0.4",
            "--graphs-per-cell", "1", "--samples", "16", "--plot",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "G(n=12" in out
        assert "(log x)" in out

    def test_figure4_single_graph(self, capsys):
        code = main([
            "--seed", "5",
            "figure4", "--graphs", "eco-stmarks", "--samples", "16",
        ])
        assert code == 0
        assert "eco-stmarks" in capsys.readouterr().out

    def test_ablation_rank(self, capsys):
        code = main([
            "--seed", "6",
            "ablation", "--kind", "rank", "--vertices", "16", "--samples", "16",
        ])
        assert code == 0
        assert "rank_4" in capsys.readouterr().out

    def test_compare_sequential_solvers(self, capsys):
        code = main([
            "--seed", "7",
            "compare", "--suite", "er-small", "--solvers", "random,trevisan",
            "--budget", "16", "--trials", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Arena leaderboard" in out
        assert "winner:" in out

    def test_compare_engine_solver_with_save(self, tmp_path, capsys):
        out_file = tmp_path / "compare.json"
        code = main([
            "--seed", "8",
            "compare", "--suite", "er-small", "--solvers", "lif_tr,random",
            "--budget", "16", "--trials", "2", "--plot", "--save", str(out_file),
        ])
        assert code == 0
        out = capsys.readouterr().out
        # The batchable circuit must have taken the engine path.
        assert "engine[" in out
        assert "mean cut ratio" in out  # --plot bar chart
        payload = json.loads(out_file.read_text())
        # The shim persists through the unified workload path (`run arena`).
        assert payload["experiment"] == "arena"
        assert payload["config"]["suite"] == "er-small"
        engine_flags = {r["solver"]: r["used_engine"] for r in payload["results"]}
        assert engine_flags["lif_tr"] is True
        assert engine_flags["random"] is False

    def test_compare_honors_global_save_flag(self, tmp_path, capsys):
        out_file = tmp_path / "global-save.json"
        code = main([
            "--save", str(out_file),
            "compare", "--suite", "er-small", "--solvers", "random",
            "--budget", "8", "--trials", "1",
        ])
        assert code == 0
        assert out_file.exists()
        assert json.loads(out_file.read_text())["experiment"] == "arena"

    def test_compare_unknown_solver_is_friendly_error(self, capsys):
        code = main(["compare", "--solvers", "random,quantum"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown solver" in err

    def test_compare_rejects_unknown_suite(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--suite", "not-a-suite"])

    def test_solve_from_edge_list_file(self, tmp_path, capsys):
        graph_file = tmp_path / "toy.txt"
        graph_file.write_text("0 1\n1 2\n2 0\n")
        code = main(["solve", "--solver", "random", "--graph", str(graph_file), "--samples", "8"])
        assert code == 0
        assert "toy" in capsys.readouterr().out
