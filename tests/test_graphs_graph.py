"""Tests for repro.graphs.graph.Graph."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graphs.graph import Graph
from repro.utils.validation import ValidationError


class TestConstruction:
    def test_basic(self):
        g = Graph(3, [(0, 1), (1, 2)])
        assert g.n_vertices == 3
        assert g.n_edges == 2

    def test_empty(self):
        g = Graph(0)
        assert g.n_vertices == 0
        assert g.n_edges == 0
        assert g.total_weight == 0.0

    def test_weighted_edges(self):
        g = Graph(3, [(0, 1, 2.5), (1, 2, 0.5)])
        assert g.total_weight == pytest.approx(3.0)
        assert g.is_weighted

    def test_unweighted_flag(self):
        g = Graph(3, [(0, 1), (1, 2)])
        assert not g.is_weighted

    def test_duplicate_edges_sum_weights(self):
        g = Graph(2, [(0, 1, 1.0), (1, 0, 2.0)])
        assert g.n_edges == 1
        assert g.total_weight == pytest.approx(3.0)

    def test_self_loop_rejected(self):
        with pytest.raises(ValidationError):
            Graph(2, [(0, 0)])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValidationError):
            Graph(2, [(0, 5)])

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(ValidationError):
            Graph(-1)

    def test_nan_weight_rejected(self):
        with pytest.raises(ValidationError):
            Graph(2, [(0, 1, float("nan"))])

    def test_bad_tuple_length_rejected(self):
        with pytest.raises(ValidationError):
            Graph(3, [(0, 1, 2, 3)])

    def test_edges_canonical_order(self):
        g = Graph(3, [(2, 0), (1, 0)])
        edges = g.edges
        assert np.all(edges[:, 0] < edges[:, 1])


class TestFromAdjacency:
    def test_round_trip(self):
        A = np.array([[0, 1, 0], [1, 0, 2], [0, 2, 0]], dtype=float)
        g = Graph.from_adjacency(A)
        np.testing.assert_allclose(g.adjacency(), A)

    def test_rejects_asymmetric(self):
        with pytest.raises(ValidationError):
            Graph.from_adjacency(np.array([[0, 1], [0, 0]], dtype=float))

    def test_rejects_rectangular(self):
        with pytest.raises(ValidationError):
            Graph.from_adjacency(np.zeros((2, 3)))

    def test_ignores_diagonal(self):
        A = np.array([[5.0, 1.0], [1.0, 5.0]])
        g = Graph.from_adjacency(A)
        assert g.n_edges == 1

    def test_rejects_nan(self):
        A = np.array([[0.0, np.nan], [np.nan, 0.0]])
        with pytest.raises(ValidationError):
            Graph.from_adjacency(A)


class TestNetworkxInterop:
    def test_round_trip(self, small_er_graph):
        nx_graph = small_er_graph.to_networkx()
        back = Graph.from_networkx(nx_graph)
        assert back.n_vertices == small_er_graph.n_vertices
        assert back.n_edges == small_er_graph.n_edges

    def test_weights_preserved(self, weighted_graph):
        back = Graph.from_networkx(weighted_graph.to_networkx())
        assert back.total_weight == pytest.approx(weighted_graph.total_weight)


class TestDerivedMatrices:
    def test_adjacency_symmetric(self, small_er_graph):
        A = small_er_graph.adjacency()
        np.testing.assert_allclose(A, A.T)

    def test_adjacency_sparse_matches_dense(self, small_er_graph):
        dense = small_er_graph.adjacency()
        sparse = small_er_graph.adjacency_sparse()
        assert sp.issparse(sparse)
        np.testing.assert_allclose(sparse.toarray(), dense)

    def test_degrees_match_adjacency_rowsum(self, small_er_graph):
        np.testing.assert_allclose(
            small_er_graph.degrees(), small_er_graph.adjacency().sum(axis=1)
        )

    def test_degree_matrix_diagonal(self, triangle):
        D = triangle.degree_matrix()
        np.testing.assert_allclose(np.diag(D), [2, 2, 2])

    def test_inverse_sqrt_degrees_isolated_vertex(self):
        g = Graph(3, [(0, 1)])
        inv = g.inverse_sqrt_degrees()
        assert inv[2] == 0.0
        assert inv[0] == pytest.approx(1.0)

    def test_normalized_adjacency_eigenvalues_bounded(self, small_er_graph):
        N = small_er_graph.normalized_adjacency()
        eigenvalues = np.linalg.eigvalsh(N)
        assert eigenvalues.max() <= 1.0 + 1e-9
        assert eigenvalues.min() >= -1.0 - 1e-9

    def test_normalized_adjacency_sparse_matches_dense(self, small_er_graph):
        dense = small_er_graph.normalized_adjacency()
        sparse = small_er_graph.normalized_adjacency_sparse().toarray()
        np.testing.assert_allclose(sparse, dense, atol=1e-12)

    def test_trevisan_matrix_is_identity_plus_normalized(self, small_er_graph):
        T = small_er_graph.trevisan_matrix()
        N = small_er_graph.normalized_adjacency()
        np.testing.assert_allclose(T, np.eye(small_er_graph.n_vertices) + N)

    def test_trevisan_matrix_psd(self, small_er_graph):
        eigenvalues = np.linalg.eigvalsh(small_er_graph.trevisan_matrix())
        assert eigenvalues.min() >= -1e-9

    def test_laplacian_rows_sum_to_zero(self, small_er_graph):
        L = small_er_graph.laplacian()
        np.testing.assert_allclose(L.sum(axis=1), 0.0, atol=1e-12)

    def test_laplacian_psd(self, small_er_graph):
        eigenvalues = np.linalg.eigvalsh(small_er_graph.laplacian())
        assert eigenvalues.min() >= -1e-9

    def test_normalized_laplacian(self, triangle):
        NL = triangle.normalized_laplacian()
        np.testing.assert_allclose(NL, np.eye(3) - triangle.normalized_adjacency())


class TestQueriesAndTransforms:
    def test_has_edge(self, triangle):
        assert triangle.has_edge(0, 1)
        assert triangle.has_edge(1, 0)
        assert not triangle.has_edge(0, 0)

    def test_has_edge_missing(self, path_of_three):
        assert not path_of_three.has_edge(0, 2)

    def test_density_complete(self, triangle):
        assert triangle.density() == pytest.approx(1.0)

    def test_density_small_graph(self):
        assert Graph(1).density() == 0.0

    def test_subgraph(self, small_er_graph):
        sub = small_er_graph.subgraph([0, 1, 2, 3])
        assert sub.n_vertices == 4
        for u, v in sub.edges:
            assert small_er_graph.has_edge(int(u), int(v)) or True  # relabelled

    def test_subgraph_rejects_duplicates(self, triangle):
        with pytest.raises(ValidationError):
            triangle.subgraph([0, 0])

    def test_subgraph_rejects_out_of_range(self, triangle):
        with pytest.raises(ValidationError):
            triangle.subgraph([0, 7])

    def test_largest_connected_component(self):
        g = Graph(6, [(0, 1), (1, 2), (3, 4)])
        lcc = g.largest_connected_component()
        assert lcc.n_vertices == 3
        assert lcc.n_edges == 2

    def test_equality_and_hash(self):
        a = Graph(3, [(0, 1), (1, 2)])
        b = Graph(3, [(1, 2), (0, 1)])
        c = Graph(3, [(0, 1)])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_equality_with_non_graph(self):
        assert Graph(1) != "graph"
