"""Tests for the portfolio meta-solver (repro.portfolio).

The load-bearing claims:

* instance features are deterministic and invariant under vertex
  relabeling (including the Lanczos spectral-gap estimate, which uses
  label-equivariant probe vectors precisely for this reason);
* a k=1 "race" is bit-identical to running the single solver alone with
  the same root seed, on both the batched-engine and sequential paths;
* races never exceed their trial budget, and deterministic candidates
  run exactly one trial;
* mined PortfolioModel priors survive a JSON round-trip through the
  standard experiment persistence layer;
* ``"auto"`` is a first-class solver name: registry, arena (with a
  timing-stripped determinism pin), CLI, and serve all accept it, and a
  served ``"solver": "auto"`` answer is bit-identical to requesting the
  routed circuit directly.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro.algorithms.registry import get_spec, list_solvers
from repro.arena import ArenaBudget, run_arena
from repro.engine.sampler import trial_seed_sequences
from repro.experiments.runner import run_circuit_trials, save_results
from repro.graphs.generators import complete_bipartite, erdos_renyi
from repro.graphs.graph import Graph
from repro.graphs.io import graph_to_dict
from repro.portfolio import (
    DEFAULT_CANDIDATES,
    InstanceFeatures,
    PortfolioModel,
    bucket_key,
    explain_model,
    extract_features,
    fit_from_paths,
    fit_from_records,
    load_model,
    race,
    rank_solvers,
    route_circuit,
    rung_schedule,
    save_model,
    solve_portfolio,
    spectral_gap_estimate,
)
from repro.problems import compile_to_maxcut, random_problem
from repro.serve import ServiceConfig, SolverService
from repro.utils.validation import ValidationError
from repro.workloads.spec import Budget


def _permuted(graph: Graph, seed: int = 0) -> Graph:
    """The same graph with vertices relabeled by a random permutation."""
    rng = np.random.default_rng(seed)
    perm = rng.permutation(graph.n_vertices)
    edges = [(int(perm[int(u)]), int(perm[int(v)]), float(w))
             for (u, v), w in zip(graph.edges, graph.edge_weights)]
    return Graph(graph.n_vertices, edges, name=f"{graph.name}-permuted")


def _weighted_er(n: int, p: float, seed: int) -> Graph:
    """ER graph with non-uniform edge weights (weight stats must move)."""
    base = erdos_renyi(n, p, seed=seed)
    rng = np.random.default_rng(seed + 1)
    edges = [(int(u), int(v), float(w))
             for (u, v), w in zip(base.edges,
                                  rng.uniform(0.5, 2.0, base.n_edges))]
    return Graph(n, edges, name="weighted-er")


def _record(solver, n_vertices=12, n_edges=26, cut_ratio=1.0, **extra):
    row = {"solver": solver, "n_vertices": n_vertices, "n_edges": n_edges,
           "cut_ratio": cut_ratio}
    row.update(extra)
    return row


class TestFeatures:
    def test_extraction_is_deterministic(self):
        g = erdos_renyi(18, 0.3, seed=2)
        assert extract_features(g) == extract_features(g)

    def test_relabel_invariance(self):
        g = _weighted_er(16, 0.4, seed=5)
        h = _permuted(g, seed=9)
        fg, fh = extract_features(g), extract_features(h)
        for field in dataclasses.fields(InstanceFeatures):
            a, b = getattr(fg, field.name), getattr(fh, field.name)
            if isinstance(a, float):
                # Summation order differs after relabeling; everything else
                # about the estimate is label-equivariant by construction.
                assert a == pytest.approx(b, abs=1e-8), field.name
            else:
                assert a == b, field.name

    def test_spectral_gap_relabel_invariant_on_regular_graph(self):
        # Regular graphs are the adversarial case: degree-based probes
        # carry no labeling information, so any hidden label dependence
        # (e.g. a random restart vector) would show up here.
        g = complete_bipartite(5, 5)
        h = _permuted(g, seed=3)
        assert spectral_gap_estimate(g) == pytest.approx(
            spectral_gap_estimate(h), abs=1e-8)

    def test_degenerate_graphs_get_zero_gap(self):
        assert spectral_gap_estimate(Graph(1)) == 0.0
        assert spectral_gap_estimate(Graph(5)) == 0.0  # no edges

    def test_problem_class_from_compiled_graph(self):
        problem = random_problem("qubo", seed=3, n_variables=5)
        compiled = compile_to_maxcut(problem)[0]
        features = extract_features(compiled)
        assert features.problem_class == "qubo"
        assert extract_features(erdos_renyi(8, 0.5, seed=1)).problem_class \
            == "maxcut"

    def test_to_dict_round_trips_field_names(self):
        features = extract_features(erdos_renyi(10, 0.4, seed=0))
        payload = features.to_dict()
        assert set(payload) == {f.name for f in
                                dataclasses.fields(InstanceFeatures)}
        assert json.loads(json.dumps(payload)) == payload

    def test_bucket_key_bands(self):
        assert bucket_key("maxcut", 32, 0.05) == "maxcut/small/sparse"
        assert bucket_key("maxcut", 128, 0.2) == "maxcut/medium/mid"
        assert bucket_key("qubo", 1024, 0.9) == "qubo/large/dense"


class TestRungSchedule:
    def test_worked_examples(self):
        assert rung_schedule(1, 6) == [6]
        assert rung_schedule(4, 8) == [4, 8]
        assert rung_schedule(2, 1) == [1]

    def test_bounds(self):
        for k in (1, 2, 3, 5, 8):
            for t in (1, 2, 4, 7, 16):
                targets = rung_schedule(k, t)
                assert targets == sorted(set(targets))
                assert targets[-1] == t
                assert all(1 <= x <= t for x in targets)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValidationError):
            rung_schedule(0, 4)
        with pytest.raises(ValidationError):
            rung_schedule(2, 0)


class TestRace:
    @pytest.fixture
    def graph(self):
        return erdos_renyi(14, 0.4, seed=8)

    def test_single_candidate_race_equals_engine_run(self, graph):
        result = race(graph, ["lif_tr"],
                      budget=Budget(n_trials=3, n_samples=16), seed=7)
        solo = run_circuit_trials(graph, circuit="lif_tr", n_trials=3,
                                  n_samples=16, seed=7)
        assert result.winner == "lif_tr"
        assert result.best_cut.weight == solo.best_cut.weight
        assert np.array_equal(result.best_cut.assignment,
                              solo.best_cut.assignment)
        assert result.trials_used == {"lif_tr": 3}

    def test_single_candidate_race_equals_sequential_run(self, graph):
        result = race(graph, ["local_search"],
                      budget=Budget(n_trials=3, n_samples=16), seed=11,
                      use_engine=False)
        fn = get_spec("local_search").fn
        cuts = [fn(graph, n_samples=16, seed=seq)
                for seq in trial_seed_sequences(11, 3)]
        best = max(cuts, key=lambda c: c.weight)
        assert result.best_cut.weight == best.weight

    def test_race_is_deterministic(self, graph):
        kwargs = dict(budget=Budget(n_trials=4, n_samples=16), seed=3)
        first = race(graph, ["lif_tr", "local_search"], **kwargs)
        second = race(graph, ["lif_tr", "local_search"], **kwargs)
        assert first.winner == second.winner
        assert first.best_cut.weight == second.best_cut.weight
        assert first.trials_used == second.trials_used
        assert first.rungs == second.rungs

    def test_budget_never_exceeded(self, graph):
        solvers = ["lif_tr", "local_search", "annealing", "trevisan"]
        budget = Budget(n_trials=5, n_samples=8)
        result = race(graph, solvers, budget=budget, seed=1)
        assert all(t <= budget.n_trials for t in result.trials_used.values())
        assert result.total_trials <= len(solvers) * budget.n_trials
        # Deterministic candidates never rerun: one trial, ever.
        assert result.trials_used["trevisan"] == 1

    def test_winner_runs_full_budget(self, graph):
        result = race(graph, ["lif_tr", "local_search"],
                      budget=Budget(n_trials=6, n_samples=8), seed=2)
        if not get_spec(result.winner).deterministic:
            assert result.trials_used[result.winner] == 6

    def test_duplicate_and_empty_candidates_rejected(self, graph):
        with pytest.raises(ValidationError):
            race(graph, ["lif_tr", "lif_tr"])
        with pytest.raises(ValidationError):
            race(graph, [])

    def test_rung_trace_records_halving(self, graph):
        result = race(graph, ["lif_tr", "local_search", "trevisan"],
                      budget=Budget(n_trials=4, n_samples=8), seed=0)
        assert result.rungs[0]["active"] == ["lif_tr", "local_search",
                                             "trevisan"]
        assert len(result.rungs[-1]["survivors"]) == 1
        assert result.rungs[-1]["survivors"] == [result.winner]
        payload = result.to_dict()
        assert json.loads(json.dumps(payload)) == payload


class TestPriors:
    def test_fit_ranks_by_mean_ratio_then_name(self):
        model = fit_from_records([
            _record("alpha", cut_ratio=0.9),
            _record("beta", cut_ratio=1.0),
            _record("gamma", cut_ratio=1.0),
        ])
        assert [r["solver"] for r in model.overall] == \
            ["beta", "gamma", "alpha"]
        assert model.overall[0]["wins"] == 1
        assert model.n_records == 3 and model.n_skipped == 0

    def test_fit_skips_malformed_records(self):
        model = fit_from_records([
            _record("alpha"), {"solver": "broken"}, "not-a-dict",
        ])
        assert model.n_records == 1 and model.n_skipped == 2

    def test_fit_buckets_by_problem_class_and_size(self):
        model = fit_from_records([
            _record("alpha", n_vertices=12, n_edges=26),
            _record("beta", n_vertices=300, n_edges=600,
                    metadata={"problem_class": "qubo"}),
        ])
        assert any(b.startswith("maxcut/small/") for b in model.buckets)
        assert any(b.startswith("qubo/large/") for b in model.buckets)

    def test_model_json_round_trip(self, tmp_path):
        model = fit_from_records(
            [_record("alpha"), _record("beta", cut_ratio=0.8)],
            n_reports=2, sources=["a.json", "b.json"])
        path = tmp_path / "model.json"
        save_model(path, model)
        assert load_model(path) == model

    def test_load_rejects_wrong_result_type(self, tmp_path):
        result = run_arena(
            ["random"], suite=[erdos_renyi(8, 0.5, seed=1, name="g")],
            budget=ArenaBudget(n_trials=1, n_samples=8), seed=0)
        path = tmp_path / "other.json"
        save_results(path, "compare", result.entries[:1])
        with pytest.raises(ValidationError):
            load_model(path)

    def test_fit_from_arena_save(self, tmp_path):
        result = run_arena(
            ["random", "trevisan"],
            suite=[erdos_renyi(12, 0.4, seed=3, name="tiny-er")],
            budget=ArenaBudget(n_trials=2, n_samples=16), seed=0)
        path = tmp_path / "arena.json"
        save_results(path, "compare", result.entries)
        model = fit_from_paths([path])
        assert model.n_records == len(result.entries)
        mined = {r["solver"] for r in model.overall}
        assert mined == {"random", "trevisan"}
        assert str(path) in model.sources
        rendered = explain_model(model)
        assert "trevisan" in rendered

    def test_fit_from_paths_requires_input(self):
        with pytest.raises(ValidationError):
            fit_from_paths([])

    def test_rank_solvers_filters_and_appends_unseen(self):
        model = fit_from_records([
            _record("beta", cut_ratio=1.0),
            _record("alpha", cut_ratio=0.5),
        ])
        features = extract_features(erdos_renyi(12, 0.4, seed=3))
        ranked = rank_solvers(model, features,
                              available=["alpha", "beta", "mystery"])
        assert ranked[:2] == ["beta", "alpha"]
        assert ranked[2] == "mystery"  # unseen: appended in caller order


class TestPortfolioSolver:
    def test_registered_under_auto_alias(self):
        assert get_spec("auto").key == "portfolio"
        assert get_spec("portfolio").key == "portfolio"
        assert "portfolio" in list_solvers()

    def test_model_routing_is_bit_identical_to_direct_call(self):
        g = erdos_renyi(12, 0.4, seed=3)
        # A model that puts the deterministic trevisan solver on top for
        # every bucket: routing must reproduce its answer exactly.
        model = fit_from_records([
            _record("trevisan", n_vertices=g.n_vertices,
                    n_edges=g.n_edges, cut_ratio=1.0),
        ])
        routed = solve_portfolio(g, n_samples=8, seed=5, model=model)
        direct = get_spec("trevisan").fn(g, n_samples=8, seed=5)
        assert routed.weight == direct.weight
        assert np.array_equal(routed.assignment, direct.assignment)

    def test_cold_path_matches_explicit_race(self):
        g = erdos_renyi(12, 0.4, seed=3)
        cut = solve_portfolio(g, n_samples=16, seed=4,
                              candidates=["lif_tr", "local_search"],
                              race_trials=3)
        raced = race(g, ["lif_tr", "local_search"],
                     budget=Budget(n_trials=3, n_samples=16), seed=4)
        assert cut.weight == raced.best_cut.weight
        assert np.array_equal(cut.assignment, raced.best_cut.assignment)

    def test_self_race_rejected(self):
        g = erdos_renyi(8, 0.4, seed=1)
        with pytest.raises(ValidationError):
            solve_portfolio(g, candidates=["auto"])

    def test_default_candidates_are_registered_and_setup_free(self):
        for name in DEFAULT_CANDIDATES:
            spec = get_spec(name)
            assert spec.key == name


def _strip_timing(rows):
    return [{k: v for k, v in row.items()
             if k not in ("elapsed_seconds", "samples_per_second")}
            for row in rows]


class TestArenaAutoDeterminism:
    def test_auto_vs_gw_leaderboard_pinned_across_runs(self):
        """Acceptance pin: `repro compare --solvers auto,gw` is deterministic.

        Two identical runs must produce identical leaderboard JSON once
        wall-clock columns are stripped (they are the only permitted
        difference).
        """
        suite = [
            erdos_renyi(10, 0.4, seed=3, name="pin-er"),
            complete_bipartite(4, 4, name="pin-k44"),
        ]

        def one_run():
            result = run_arena(["auto", "gw"], suite=suite,
                               budget=ArenaBudget(n_trials=2, n_samples=16),
                               seed=0)
            entries = [dataclasses.asdict(e) for e in result.entries]
            return (_strip_timing(result.aggregate()),
                    _strip_timing(entries))

        first, second = one_run(), one_run()
        assert json.dumps(first, sort_keys=True, default=str) == \
            json.dumps(second, sort_keys=True, default=str)


class TestServeAuto:
    def _payload(self, graph, **overrides):
        payload = {"graph": graph_to_dict(graph), "solver": "auto",
                   "trials": 2, "samples": 8, "seed": 0}
        payload.update(overrides)
        return {k: v for k, v in payload.items() if v is not None}

    def test_auto_routes_sparse_to_lif_tr_bit_identically(self):
        g = erdos_renyi(14, 0.15, seed=2)  # density < 0.25 -> lif_tr
        assert route_circuit(g) == "lif_tr"
        with SolverService() as service:
            routed = service.solve(self._payload(g, seed=6), timeout=60)
            direct = service.solve(
                self._payload(g, solver=None, circuit="lif_tr", seed=6),
                timeout=60)
        assert routed["status"] == direct["status"] == "ok"
        assert routed["circuit"] == "lif_tr"
        assert routed["routed"] is True and direct["routed"] is False
        # The acceptance claim: the routed answer is bit-identical to
        # requesting the chosen circuit directly (identical content key,
        # so the second request is answered from the result cache).
        for key in ("best_weight", "assignment", "trial_best_weights",
                    "graph_fingerprint", "seed"):
            assert routed[key] == direct[key], key

    def test_auto_routes_dense_to_lif_gw(self):
        g = erdos_renyi(10, 0.7, seed=4)
        assert route_circuit(g) == "lif_gw"
        with SolverService() as service:
            response = service.solve(self._payload(g, trials=1, samples=6),
                                     timeout=120)
            stats = service.stats()
        assert response["status"] == "ok"
        assert response["circuit"] == "lif_gw"
        assert response["routed"] is True
        assert stats["routed"] == 1

    def test_route_circuit_honours_model_priors(self):
        g = erdos_renyi(10, 0.7, seed=4)  # heuristic alone says lif_gw
        model = fit_from_records([
            _record("lif_tr", n_vertices=g.n_vertices, n_edges=g.n_edges,
                    cut_ratio=1.0),
            _record("lif_gw", n_vertices=g.n_vertices, n_edges=g.n_edges,
                    cut_ratio=0.5),
        ])
        assert route_circuit(g, model=model) == "lif_tr"

    def test_service_config_accepts_model_path(self, tmp_path):
        model = fit_from_records([_record("lif_tr")])
        path = tmp_path / "model.json"
        save_model(path, model)
        service = SolverService(
            ServiceConfig(portfolio_model=str(path)), autostart=False)
        assert service._route(erdos_renyi(10, 0.7, seed=4)) == "lif_tr"


class TestPortfolioCLI:
    @pytest.fixture
    def results_file(self, tmp_path):
        result = run_arena(
            ["random", "trevisan"],
            suite=[erdos_renyi(12, 0.4, seed=3, name="tiny-er")],
            budget=ArenaBudget(n_trials=2, n_samples=16), seed=0)
        path = tmp_path / "compare.json"
        save_results(path, "compare", result.entries)
        return path

    def test_fit_then_explain_round_trip(self, results_file, tmp_path,
                                         capsys):
        from repro.cli import main

        out = tmp_path / "model.json"
        assert main(["portfolio", "fit", str(results_file),
                     "--out", str(out)]) == 0
        assert load_model(out).n_records > 0
        capsys.readouterr()
        assert main(["portfolio", "explain", str(out)]) == 0
        rendered = capsys.readouterr().out
        assert "trevisan" in rendered

    def test_fit_without_minable_records_exits_nonzero(self, tmp_path):
        from repro.cli import main

        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({
            "experiment": "compare", "created_at": 0.0, "config": {},
            "results": [{"not": "minable"}],
        }))
        assert main(["portfolio", "fit", str(bogus)]) == 2

    def test_solve_accepts_auto(self, capsys):
        from repro.cli import main

        assert main(["--seed", "3", "solve", "--solver", "auto",
                     "--er", "10", "0.4", "--samples", "16",
                     "--trials", "2"]) == 0
        assert "cut" in capsys.readouterr().out.lower()
