"""Tests for the Trevisan/random baselines and the solver registry."""

import numpy as np
import pytest

from repro.algorithms.random_baseline import random_baseline
from repro.algorithms.registry import (
    SOLVER_SPECS,
    SOLVERS,
    SolverSpec,
    get_solver,
    get_spec,
    list_solvers,
    list_specs,
    register_solver,
)
from repro.algorithms.trevisan import trevisan_spectral
from repro.cuts.exact import exact_maxcut_value
from repro.graphs.generators import erdos_renyi
from repro.utils.validation import ValidationError

# Registers the problem-native solvers (maxdicut_gw, max2sat_gw) so the
# registry contents below do not depend on test collection order.
import repro.problems  # noqa: F401  (registration side effect)


class TestTrevisanSpectralBaseline:
    def test_returns_cut(self, small_er_graph):
        cut = trevisan_spectral(small_er_graph)
        assert cut.n_vertices == small_er_graph.n_vertices

    def test_sweep_at_least_simple(self, medium_er_graph):
        simple = trevisan_spectral(medium_er_graph, sweep=False).weight
        sweep = trevisan_spectral(medium_er_graph, sweep=True).weight
        assert sweep >= simple - 1e-9

    def test_below_optimum(self, small_er_graph):
        assert trevisan_spectral(small_er_graph).weight <= exact_maxcut_value(small_er_graph)


class TestRandomBaseline:
    def test_shapes(self, small_er_graph):
        best, weights = random_baseline(small_er_graph, n_samples=32, seed=0)
        assert weights.shape == (32,)
        assert best.weight == pytest.approx(weights.max())

    def test_requires_samples(self, triangle):
        with pytest.raises(ValidationError):
            random_baseline(triangle, n_samples=0)

    def test_reproducible(self, small_er_graph):
        a = random_baseline(small_er_graph, 16, seed=1)[1]
        b = random_baseline(small_er_graph, 16, seed=1)[1]
        np.testing.assert_array_equal(a, b)


class TestRegistry:
    def test_expected_solvers_registered(self):
        names = list_solvers()
        for expected in (
            "lif_gw", "lif_tr", "solver", "trevisan", "random",
            "annealing", "tempering", "local_search",
        ):
            assert expected in names

    @pytest.mark.parametrize("name", ["annealing", "tempering", "local_search"])
    def test_baseline_solvers_run_and_respect_bounds(self, name):
        graph = erdos_renyi(16, 0.4, seed=6)
        cut = get_solver(name)(graph, n_samples=32, seed=7)
        assert 0 <= cut.weight <= graph.total_weight
        # these heuristics are all at least as good as half the edges on average
        assert cut.weight >= 0.45 * graph.total_weight

    def test_get_solver_unknown_raises(self):
        with pytest.raises(ValidationError):
            get_solver("quantum_annealer")

    def test_get_solver_unknown_error_lists_available_solvers(self):
        with pytest.raises(ValidationError) as excinfo:
            get_solver("quantum_annealer")
        message = str(excinfo.value)
        assert "quantum_annealer" in message
        for name in list_solvers():
            assert name in message

    def test_get_solver_typo_suggests_closest_match(self):
        with pytest.raises(ValidationError, match="did you mean 'lif_gw'"):
            get_solver("lif_gww")

    def test_gw_alias_resolves_to_same_callable(self):
        # "gw" is the canonical key; "solver" is the historical alias.
        assert get_solver("gw") is get_solver("solver")
        assert get_spec("solver").key == "gw"

    def test_get_spec_unknown_raises_with_listing(self):
        with pytest.raises(ValidationError, match="available"):
            get_spec("quantum_annealer")


class TestSolverSpecs:
    def test_every_canonical_key_has_a_spec(self):
        # The portfolio meta-solver registers itself on import of
        # repro.portfolio (pulled in by repro.workloads), so make the
        # expectation independent of which tests ran first.
        import repro.portfolio  # noqa: F401 — registration side effect

        assert set(SOLVER_SPECS) == {
            "lif_gw", "lif_tr", "gw", "trevisan", "random",
            "annealing", "tempering", "local_search",
            "maxdicut_gw", "max2sat_gw", "portfolio",
        }

    def test_specs_carry_capability_metadata(self):
        assert get_spec("lif_gw").batchable
        assert get_spec("lif_gw").circuit == "lif_gw"
        assert get_spec("trevisan").deterministic
        assert get_spec("trevisan").budget == "ignored"
        assert get_spec("annealing").budget == "sweeps"
        assert not get_spec("gw").batchable

    def test_list_specs_sorted_by_key(self):
        keys = [spec.key for spec in list_specs()]
        assert keys == sorted(keys)

    def test_register_solver_rejects_collisions(self):
        spec = SolverSpec(key="random", fn=lambda g, **kw: None, deterministic=True,
                          budget="ignored")
        with pytest.raises(ValidationError, match="already registered"):
            register_solver(spec)

    def test_register_and_lookup_custom_solver(self):
        def constant_solver(graph, n_samples=1, seed=None, **kwargs):
            from repro.cuts.random_cut import random_cut
            return random_cut(graph, seed=0)

        spec = SolverSpec(key="_test_constant", fn=constant_solver,
                          deterministic=True, budget="ignored",
                          summary="test-only solver")
        try:
            register_solver(spec)
            assert "_test_constant" in list_solvers()
            assert get_spec("_test_constant") is spec
            assert get_solver("_test_constant") is constant_solver
        finally:
            SOLVER_SPECS.pop("_test_constant", None)
            SOLVERS.pop("_test_constant", None)

    def test_register_overwrite_purges_replaced_aliases(self):
        def fn_a(graph, **kw):
            return None

        def fn_b(graph, **kw):
            return None

        try:
            register_solver(SolverSpec(key="_test_ow", fn=fn_a, deterministic=True,
                                       budget="ignored", aliases=("_test_ow_alias",)))
            # Replace under the same key but with no aliases: the old alias
            # must not keep serving the old callable.
            register_solver(SolverSpec(key="_test_ow", fn=fn_b, deterministic=True,
                                       budget="ignored"), overwrite=True)
            assert get_solver("_test_ow") is fn_b
            assert "_test_ow_alias" not in SOLVERS
            with pytest.raises(ValidationError):
                get_solver("_test_ow_alias")
        finally:
            SOLVER_SPECS.pop("_test_ow", None)
            SOLVERS.pop("_test_ow", None)
            SOLVERS.pop("_test_ow_alias", None)

    def test_batchable_spec_requires_circuit(self):
        with pytest.raises(ValidationError, match="engine circuit"):
            SolverSpec(key="x", fn=lambda g: None, deterministic=False, batchable=True)

    def test_invalid_budget_semantics_rejected(self):
        with pytest.raises(ValidationError, match="budget"):
            SolverSpec(key="x", fn=lambda g: None, deterministic=True, budget="bogus")

    @pytest.mark.parametrize("name", ["solver", "trevisan", "random"])
    def test_classical_solvers_run(self, name):
        graph = erdos_renyi(16, 0.4, seed=2)
        cut = get_solver(name)(graph, n_samples=32, seed=3)
        assert 0 <= cut.weight <= graph.total_weight

    @pytest.mark.parametrize("name", ["lif_gw", "lif_tr"])
    def test_circuit_solvers_run(self, name):
        graph = erdos_renyi(16, 0.4, seed=4)
        cut = get_solver(name)(graph, n_samples=32, seed=5)
        assert 0 <= cut.weight <= graph.total_weight

    def test_solvers_dict_is_callable_map(self):
        assert all(callable(fn) for fn in SOLVERS.values())
