"""Tests for the Trevisan/random baselines and the solver registry."""

import numpy as np
import pytest

from repro.algorithms.random_baseline import random_baseline
from repro.algorithms.registry import SOLVERS, get_solver, list_solvers
from repro.algorithms.trevisan import trevisan_spectral
from repro.cuts.exact import exact_maxcut_value
from repro.graphs.generators import erdos_renyi
from repro.utils.validation import ValidationError


class TestTrevisanSpectralBaseline:
    def test_returns_cut(self, small_er_graph):
        cut = trevisan_spectral(small_er_graph)
        assert cut.n_vertices == small_er_graph.n_vertices

    def test_sweep_at_least_simple(self, medium_er_graph):
        simple = trevisan_spectral(medium_er_graph, sweep=False).weight
        sweep = trevisan_spectral(medium_er_graph, sweep=True).weight
        assert sweep >= simple - 1e-9

    def test_below_optimum(self, small_er_graph):
        assert trevisan_spectral(small_er_graph).weight <= exact_maxcut_value(small_er_graph)


class TestRandomBaseline:
    def test_shapes(self, small_er_graph):
        best, weights = random_baseline(small_er_graph, n_samples=32, seed=0)
        assert weights.shape == (32,)
        assert best.weight == pytest.approx(weights.max())

    def test_requires_samples(self, triangle):
        with pytest.raises(ValidationError):
            random_baseline(triangle, n_samples=0)

    def test_reproducible(self, small_er_graph):
        a = random_baseline(small_er_graph, 16, seed=1)[1]
        b = random_baseline(small_er_graph, 16, seed=1)[1]
        np.testing.assert_array_equal(a, b)


class TestRegistry:
    def test_expected_solvers_registered(self):
        names = list_solvers()
        for expected in (
            "lif_gw", "lif_tr", "solver", "trevisan", "random",
            "annealing", "tempering", "local_search",
        ):
            assert expected in names

    @pytest.mark.parametrize("name", ["annealing", "tempering", "local_search"])
    def test_baseline_solvers_run_and_respect_bounds(self, name):
        graph = erdos_renyi(16, 0.4, seed=6)
        cut = get_solver(name)(graph, n_samples=32, seed=7)
        assert 0 <= cut.weight <= graph.total_weight
        # these heuristics are all at least as good as half the edges on average
        assert cut.weight >= 0.45 * graph.total_weight

    def test_get_solver_unknown_raises(self):
        with pytest.raises(ValidationError):
            get_solver("quantum_annealer")

    @pytest.mark.parametrize("name", ["solver", "trevisan", "random"])
    def test_classical_solvers_run(self, name):
        graph = erdos_renyi(16, 0.4, seed=2)
        cut = get_solver(name)(graph, n_samples=32, seed=3)
        assert 0 <= cut.weight <= graph.total_weight

    @pytest.mark.parametrize("name", ["lif_gw", "lif_tr"])
    def test_circuit_solvers_run(self, name):
        graph = erdos_renyi(16, 0.4, seed=4)
        cut = get_solver(name)(graph, n_samples=32, seed=5)
        assert 0 <= cut.weight <= graph.total_weight

    def test_solvers_dict_is_callable_map(self):
        assert all(callable(fn) for fn in SOLVERS.values())
