"""Tests for repro.graphs.repository (the Table I graph registry)."""

import pytest

from repro.graphs.repository import (
    EMPIRICAL_GRAPHS,
    list_empirical_graphs,
    load_empirical_graph,
)
from repro.utils.validation import ValidationError


class TestRegistry:
    def test_sixteen_graphs(self):
        assert len(EMPIRICAL_GRAPHS) == 16
        assert len(list_empirical_graphs()) == 16

    def test_paper_row_order_starts_with_hamming(self):
        assert list_empirical_graphs()[0] == "hamming6-2"

    def test_all_specs_have_table1_values(self):
        for spec in EMPIRICAL_GRAPHS.values():
            assert set(spec.table1.keys()) == {
                "lif_gw", "lif_tr", "solver", "random", "reference"
            }
            assert all(v > 0 for v in spec.table1.values())

    def test_table1_solver_at_least_random(self):
        # In the paper's Table I the solver's cut is never below the random cut.
        for spec in EMPIRICAL_GRAPHS.values():
            assert spec.table1["solver"] >= spec.table1["random"]

    def test_unknown_graph_raises(self):
        with pytest.raises(ValidationError):
            load_empirical_graph("not-a-graph")


class TestExactConstructions:
    def test_hamming6_2(self):
        g = load_empirical_graph("hamming6-2")
        spec = EMPIRICAL_GRAPHS["hamming6-2"]
        assert g.n_vertices == spec.n_vertices
        assert g.n_edges == spec.n_edges

    def test_johnson16_2_4(self):
        g = load_empirical_graph("johnson16-2-4")
        spec = EMPIRICAL_GRAPHS["johnson16-2-4"]
        assert g.n_vertices == spec.n_vertices
        assert g.n_edges == spec.n_edges

    def test_exact_graphs_ignore_seed(self):
        assert load_empirical_graph("hamming6-2", seed=1) == load_empirical_graph(
            "hamming6-2", seed=2
        )


class TestSurrogates:
    @pytest.mark.parametrize(
        "name",
        ["soc-dolphins", "road-chesapeake", "ca-netscience", "dwt-209", "ENZYMES8"],
    )
    def test_vertex_count_matches_spec(self, name):
        g = load_empirical_graph(name, seed=0)
        assert g.n_vertices == EMPIRICAL_GRAPHS[name].n_vertices

    @pytest.mark.parametrize("name", ["soc-dolphins", "eco-stmarks", "email-enron-only"])
    def test_edge_count_in_ballpark(self, name):
        g = load_empirical_graph(name, seed=0)
        target = EMPIRICAL_GRAPHS[name].n_edges
        assert 0.5 * target <= g.n_edges <= 1.6 * target

    def test_surrogates_reproducible(self):
        a = load_empirical_graph("soc-dolphins", seed=3)
        b = load_empirical_graph("soc-dolphins", seed=3)
        assert a == b

    def test_surrogates_vary_with_seed(self):
        a = load_empirical_graph("soc-dolphins", seed=3)
        b = load_empirical_graph("soc-dolphins", seed=4)
        assert a != b

    def test_grid_family_surrogate(self):
        g = load_empirical_graph("dwt-209", seed=0)
        spec = EMPIRICAL_GRAPHS["dwt-209"]
        assert g.n_vertices == spec.n_vertices
        assert g.n_edges <= spec.n_edges
        assert g.n_edges >= spec.n_edges - 5  # fills up to the target or very close

    def test_graph_name_matches_registry_key(self):
        for name in ("hamming6-2", "soc-dolphins", "dwt-503"):
            assert load_empirical_graph(name, seed=0).name == name
