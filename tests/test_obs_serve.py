"""Serve-side observability: /stats on the metrics registry, /metrics, spans.

The load-bearing claims:

* migrating ``SolverService``'s hand-rolled counters and latency deque onto
  the :mod:`repro.obs` registry left the ``/stats`` payload shape and
  percentile numerics pinned exactly;
* ``stats()`` reads are coherent under concurrent submitters and the drain
  path (the historical race: admitted incremented outside the queue lock
  could make ``queue_depth > admitted``);
* ``GET /metrics`` serves Prometheus text exposition alongside ``/stats``;
* spans emitted while serving 8 concurrent batched requests form
  well-formed per-request trees with no cross-request leakage.
"""

from __future__ import annotations

import http.client
import json
import threading

import pytest

from repro.graphs.generators import erdos_renyi
from repro.graphs.io import graph_to_dict
from repro.obs import (
    PROMETHEUS_CONTENT_TYPE,
    capture,
    disable_tracing,
    nearest_rank_percentile,
)
from repro.serve import ServiceConfig, SolverService, serve_http


@pytest.fixture(autouse=True)
def _no_tracing_leaks():
    disable_tracing()
    yield
    disable_tracing()


def _graph(seed=1, n=16):
    return erdos_renyi(n, 0.35, seed=seed)


def _payload(graph, **overrides):
    payload = {
        "graph": graph_to_dict(graph), "circuit": "lif_tr",
        "trials": 2, "samples": 8, "seed": 0,
    }
    payload.update(overrides)
    return payload


class TestStatsPayloadPin:
    def test_stats_payload_shape_is_unchanged(self):
        """The registry migration must not move or rename a single key."""
        g = _graph(seed=20)
        with SolverService() as service:
            service.solve(_payload(g, seed=1), timeout=60)
            stats = service.stats()
        assert set(stats) == {
            "queue_depth", "draining", "admitted", "completed", "timed_out",
            "routed", "rejected", "engine", "caches", "latency",
        }
        assert set(stats["engine"]) == {
            "invocations", "jobs", "trials", "coalesced_jobs",
            "fused_invocations", "fused_lanes", "coalesce_ratio",
            "mean_batch_trials", "batch_occupancy",
        }
        assert set(stats["caches"]) == {"results", "circuits", "compiles"}
        assert set(stats["latency"]) == {"count", "p50_seconds", "p95_seconds"}
        assert stats["admitted"] == stats["completed"] == 1
        assert stats["rejected"] == {}
        assert stats["latency"]["count"] == 1
        assert stats["latency"]["p50_seconds"] > 0.0
        json.dumps(stats)

    def test_percentile_shim_delegates_to_obs(self):
        values = [0.4, 0.1, 0.9, 0.3]
        for fraction in (0.0, 0.5, 0.95, 1.0):
            assert SolverService._percentile(values, fraction) == \
                nearest_rank_percentile(values, fraction)

    def test_latency_histogram_window_backs_the_percentiles(self):
        service = SolverService(
            ServiceConfig(latency_window=4), autostart=False
        )
        hist = service.registry.get("repro_serve_request_latency_seconds")
        for value in (1.0, 2.0, 3.0, 4.0, 5.0):
            hist.observe(value)
        stats = service.stats()
        window = [3.0, 4.0, 5.0, 2.0]  # eviction dropped 1.0
        assert sorted(hist.window_values()) == [2.0, 3.0, 4.0, 5.0]
        assert stats["latency"]["count"] == 4
        assert stats["latency"]["p50_seconds"] == nearest_rank_percentile(
            window, 0.50
        )
        service.shutdown()

    def test_rejections_surface_as_labelled_counter(self):
        g = _graph(seed=21)
        service = SolverService(
            ServiceConfig(max_queue_depth=1), autostart=False
        )
        service.submit(_payload(g, seed=0))
        for _ in range(2):
            with pytest.raises(Exception):
                service.submit(_payload(g, seed=1))
        assert service.stats()["rejected"] == {"queue_full": 2}
        counter = service.registry.get("repro_serve_rejected_total")
        assert counter.value(reason="queue_full") == 2
        service.start()
        service.shutdown(drain=True)


class TestConcurrentStats:
    def test_stats_reads_are_coherent_while_submitting(self):
        """Satellite: the drain-path counter race.  Readers hammering
        ``stats()`` while 4 writers submit must never observe
        ``queue_depth > admitted`` (a job visible in the queue before its
        admission was counted)."""
        g = _graph(seed=22, n=12)
        service = SolverService(autostart=False)
        n_writers, per_writer = 4, 10
        start = threading.Barrier(n_writers + 4)
        violations = []
        done = threading.Event()

        def write(base):
            start.wait()
            for i in range(per_writer):
                service.submit(
                    _payload(g, trials=1, samples=4, seed=base * 100 + i)
                )

        def read():
            start.wait()
            while not done.is_set():
                stats = service.stats()
                if stats["queue_depth"] > stats["admitted"]:
                    violations.append(stats)

        writers = [
            threading.Thread(target=write, args=(b,)) for b in range(n_writers)
        ]
        readers = [threading.Thread(target=read) for _ in range(4)]
        for t in writers + readers:
            t.start()
        for t in writers:
            t.join()
        done.set()
        for t in readers:
            t.join()
        assert violations == []
        assert service.stats()["admitted"] == n_writers * per_writer
        service.start()
        service.shutdown(drain=True)
        final = service.stats()
        assert final["completed"] + final["timed_out"] == n_writers * per_writer
        assert final["queue_depth"] == 0


class TestMetricsEndpoint:
    def test_get_metrics_serves_prometheus_text(self):
        g = _graph(seed=23)
        with SolverService() as service:
            server = serve_http(service, port=0)
            thread = threading.Thread(target=server.serve_forever, daemon=True)
            thread.start()
            try:
                service.solve(_payload(g, seed=2), timeout=60)
                conn = http.client.HTTPConnection(
                    "127.0.0.1", server.server_address[1], timeout=30
                )
                conn.request("GET", "/metrics")
                response = conn.getresponse()
                body = response.read().decode("utf-8")
                assert response.status == 200
                assert response.getheader("Content-Type") == \
                    PROMETHEUS_CONTENT_TYPE
                conn.close()
            finally:
                server.shutdown()
                server.server_close()
        assert "# TYPE repro_serve_admitted_total counter" in body
        assert "repro_serve_admitted_total 1" in body
        assert "repro_serve_completed_total 1" in body
        assert "repro_serve_queue_depth 0" in body
        assert "repro_serve_request_latency_seconds_count 1" in body
        assert 'repro_serve_request_latency_seconds_bucket{le="+Inf"} 1' in body
        assert 'repro_serve_cache_hit_rate{cache="results"}' in body
        assert body.endswith("\n")

    def test_stats_endpoint_still_serves_json(self):
        with SolverService() as service:
            server = serve_http(service, port=0)
            thread = threading.Thread(target=server.serve_forever, daemon=True)
            thread.start()
            try:
                conn = http.client.HTTPConnection(
                    "127.0.0.1", server.server_address[1], timeout=30
                )
                conn.request("GET", "/stats")
                response = conn.getresponse()
                payload = json.loads(response.read().decode("utf-8"))
                assert response.status == 200
                assert payload["admitted"] == 0
                assert payload["latency"]["p95_seconds"] == 0.0
                conn.close()
            finally:
                server.shutdown()
                server.server_close()


class TestServeSpanNesting:
    def test_eight_concurrent_requests_form_clean_span_trees(self):
        """Satellite: 8 concurrent batched requests -> every span tree is
        rooted at its own ``serve.admit``, parents resolve within the same
        capture, and solve work hangs off ``serve.batch`` -> ``serve.solve``
        with no cross-request leakage."""
        g = _graph(seed=24, n=16)
        n_requests, trials = 8, 2
        config = ServiceConfig(max_batch_trials=4 * trials)
        service = SolverService(config, autostart=False)
        jobs = [None] * n_requests
        barrier = threading.Barrier(n_requests)

        def post(index):
            barrier.wait()
            jobs[index] = service.submit(
                _payload(g, trials=trials, samples=8, seed=index)
            )

        with capture() as trace:
            threads = [
                threading.Thread(target=post, args=(i,))
                for i in range(n_requests)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            service.start()
            responses = [job.wait(60) for job in jobs]
            service.shutdown()
        assert all(r["status"] == "ok" for r in responses)

        spans = trace.spans
        by_id = {s.span_id: s for s in spans}
        admits = [s for s in spans if s.name == "serve.admit"]
        assert len(admits) == n_requests
        # Each admission is its own root, on its own submitting thread.
        assert all(s.parent_id is None for s in admits)
        assert len({s.thread for s in admits}) == n_requests

        batches = [s for s in spans if s.name == "serve.batch"]
        solves = [s for s in spans if s.name == "serve.solve"]
        assert batches and len(solves) == len(batches)
        assert sum(s.attrs["batch_jobs"] for s in batches) == n_requests
        for s in solves:
            assert by_id[s.parent_id].name == "serve.batch"
        for s in spans:
            if s.name == "engine.solve":
                assert by_id[s.parent_id].name == "serve.solve"

        # Well-formed trees: every parent exists, shares the child's thread,
        # and contains the child's interval.
        for s in spans:
            if s.parent_id is None:
                continue
            parent = by_id.get(s.parent_id)
            assert parent is not None, f"dangling parent for {s.name}"
            assert parent.thread == s.thread
            assert parent.start_seconds <= s.start_seconds
            assert (s.start_seconds + s.duration_seconds) <= (
                parent.start_seconds + parent.duration_seconds + 1e-6
            )
