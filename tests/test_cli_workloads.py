"""Tests for the unified `repro run` CLI and the deprecated legacy shims.

The contract under test: every legacy subcommand (figure3 / figure4 /
table1 / ablation / compare) still works, emits exactly one
``DeprecationWarning``, and — because it delegates to the same workload
session path as ``repro run`` — produces identical saved JSON (modulo
timestamps/wall-clock timings) and identical report output.
"""

import json
import re

import pytest

from repro.cli import main

#: Header/record keys that hold wall-clock measurements (never compared).
_TIMING_KEYS = {
    "created_at",
    "elapsed_seconds",
    "arena_elapsed_seconds",
    "engine_elapsed_seconds",
    "samples_per_second",
}


def _scrub_timing(value):
    """Recursively drop wall-clock fields from a saved-results payload."""
    if isinstance(value, dict):
        return {
            k: _scrub_timing(v) for k, v in value.items() if k not in _TIMING_KEYS
        }
    if isinstance(value, list):
        return [_scrub_timing(v) for v in value]
    return value


def _scrub_stdout(text: str) -> str:
    """Blank out the timing figures in rendered reports."""
    return re.sub(r"\d+\.\d{3}s", "<t>", text)


def _run_and_load(argv, out_file, capsys):
    assert main(argv) == 0
    out = capsys.readouterr().out
    payload = json.loads(out_file.read_text())
    return _scrub_stdout(out), _scrub_timing(payload)


class TestRunCommand:
    def test_unknown_workload_is_friendly_error(self, capsys):
        assert main(["run", "figure33"]) == 2
        err = capsys.readouterr().err
        assert "unknown workload" in err
        assert "did you mean 'figure3'" in err

    def test_unknown_param_is_friendly_error(self, capsys):
        assert main(["run", "arena", "--param", "bogus=1"]) == 2
        assert "no parameter 'bogus'" in capsys.readouterr().err

    def test_malformed_param_is_friendly_error(self, capsys):
        assert main(["run", "arena", "--param", "trials"]) == 2
        assert "K=V" in capsys.readouterr().err

    def test_bad_optional_number_is_friendly_error(self, capsys):
        assert main(["run", "arena", "--param", "max_seconds=abc"]) == 2
        assert "number or 'none'" in capsys.readouterr().err

    def test_figure3_plan_shows_one_run_per_graph_method(self, capsys):
        # "trials" is graphs-per-cell (already in the graph source); the plan
        # must not double-count it as per-cell trials per solver.
        code = main([
            "run", "figure3", "--trials", "3", "--seed", "0",
            "--param", "sizes=12", "--plan",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "3 graph(s)" in out
        assert "trials=1" in out
        assert "trials=3" not in out

    def test_sugar_flag_unknown_for_workload(self, capsys):
        # figure4 declares no `workers` parameter; the sugar flag must not
        # silently disappear.
        assert main(["run", "figure4", "--workers", "2"]) == 2
        assert "no parameter 'workers'" in capsys.readouterr().err

    def test_plan_previews_without_running(self, capsys):
        code = main([
            "run", "arena", "--param", "solvers=random,trevisan",
            "--trials", "2", "--samples", "8", "--seed", "0", "--plan",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "workload 'arena'" in out
        assert "once" in out          # trevisan is deterministic
        assert "sequential" in out    # random runs per-trial

    def test_workloads_listing(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("ablation", "arena", "figure3", "figure4", "table1"):
            assert name in out
        assert "repro run" in out

    def test_run_arena_prints_leaderboard(self, capsys):
        code = main([
            "run", "arena", "--param", "solvers=random,trevisan",
            "--trials", "2", "--samples", "8", "--seed", "0",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Arena leaderboard" in out
        assert "winner:" in out


class TestLegacyShimEquivalence:
    """Acceptance: legacy shims == `repro run` path, field for field."""

    def test_figure3_shim_matches_run_path(self, tmp_path, capsys):
        new_file = tmp_path / "new.json"
        old_file = tmp_path / "old.json"
        new_out, new_payload = _run_and_load([
            "run", "figure3", "--trials", "2", "--seed", "0",
            "--samples", "16", "--param", "sizes=12",
            "--param", "probabilities=0.4", "--save", str(new_file),
        ], new_file, capsys)
        with pytest.warns(DeprecationWarning, match="repro run figure3"):
            old_out, old_payload = _run_and_load([
                "--seed", "0", "--save", str(old_file),
                "figure3", "--sizes", "12", "--probabilities", "0.4",
                "--graphs-per-cell", "2", "--samples", "16",
            ], old_file, capsys)
        assert new_payload == old_payload
        assert new_payload["experiment"] == "figure3"
        assert new_payload["results"][0]["__type__"] == "Figure3Cell"
        assert old_out.replace(str(old_file), "<f>") == \
            new_out.replace(str(new_file), "<f>")

    def test_figure4_shim_matches_run_path(self, tmp_path, capsys):
        new_file = tmp_path / "new.json"
        old_file = tmp_path / "old.json"
        new_out, new_payload = _run_and_load([
            "run", "figure4", "--seed", "3", "--samples", "16",
            "--param", "graphs=eco-stmarks", "--save", str(new_file),
        ], new_file, capsys)
        with pytest.warns(DeprecationWarning):
            old_out, old_payload = _run_and_load([
                "--seed", "3", "--save", str(old_file),
                "figure4", "--graphs", "eco-stmarks", "--samples", "16",
            ], old_file, capsys)
        assert new_payload == old_payload
        assert new_payload["results"][0]["__type__"] == "Figure4Panel"
        assert old_out.replace(str(old_file), "<f>") == \
            new_out.replace(str(new_file), "<f>")

    def test_table1_shim_matches_run_path(self, tmp_path, capsys):
        new_file = tmp_path / "new.json"
        old_file = tmp_path / "old.json"
        new_out, new_payload = _run_and_load([
            "run", "table1", "--seed", "4", "--samples", "32",
            "--param", "graphs=road-chesapeake", "--save", str(new_file),
        ], new_file, capsys)
        with pytest.warns(DeprecationWarning):
            old_out, old_payload = _run_and_load([
                "--seed", "4", "--save", str(old_file),
                "table1", "--graphs", "road-chesapeake", "--samples", "32",
            ], old_file, capsys)
        assert new_payload == old_payload
        assert new_payload["results"][0]["__type__"] == "Table1Row"
        assert old_out.replace(str(old_file), "<f>") == \
            new_out.replace(str(new_file), "<f>")

    def test_ablation_shim_matches_run_path(self, tmp_path, capsys):
        new_file = tmp_path / "new.json"
        old_file = tmp_path / "old.json"
        new_out, new_payload = _run_and_load([
            "run", "ablation", "--seed", "5", "--samples", "16",
            "--param", "kind=rank", "--param", "vertices=14",
            "--save", str(new_file),
        ], new_file, capsys)
        with pytest.warns(DeprecationWarning):
            old_out, old_payload = _run_and_load([
                "--seed", "5", "--save", str(old_file),
                "ablation", "--kind", "rank", "--vertices", "14",
                "--samples", "16",
            ], old_file, capsys)
        assert new_payload == old_payload
        assert new_payload["results"][0]["__type__"] == "AblationPoint"
        assert "rank_4" in new_out
        assert old_out.replace(str(old_file), "<f>") == \
            new_out.replace(str(new_file), "<f>")

    def test_compare_shim_matches_run_path(self, tmp_path, capsys):
        new_file = tmp_path / "new.json"
        old_file = tmp_path / "old.json"
        new_out, new_payload = _run_and_load([
            "run", "arena", "--seed", "6", "--trials", "2", "--samples", "8",
            "--param", "solvers=random,trevisan", "--save", str(new_file),
        ], new_file, capsys)
        with pytest.warns(DeprecationWarning, match="repro run arena"):
            assert main([
                "--seed", "6", "--save", str(old_file),
                "compare", "--solvers", "random,trevisan",
                "--trials", "2", "--budget", "8",
            ]) == 0
        capsys.readouterr()
        old_payload = _scrub_timing(json.loads(old_file.read_text()))
        assert new_payload == old_payload
        assert new_payload["experiment"] == "arena"
        assert "Arena leaderboard" in new_out

    def test_each_shim_warns_exactly_once(self, recwarn, capsys):
        main(["table1", "--graphs", "road-chesapeake", "--samples", "16"])
        capsys.readouterr()
        deprecations = [
            w for w in recwarn.list if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "repro run table1" in str(deprecations[0].message)


class TestRunArenaShim:
    def test_run_arena_warns_and_matches_workload_path(self):
        import warnings

        from repro.arena import run_arena
        from repro.workloads import run_workload

        report = run_workload("arena", solvers=("random", "trevisan"),
                              suite="er-small", trials=2, samples=8, seed=0)
        with pytest.warns(DeprecationWarning, match="run_workload"):
            result = run_arena(["random", "trevisan"], suite="er-small",
                               n_trials=2, n_samples=8, seed=0)
        assert result.winner() == report.winner()
        assert [e.best_weight for e in result.entries] == \
            [e.best_weight for e in report.records]
        # And it warns exactly once per call.
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            run_arena(["random"], suite="er-small", n_trials=1, n_samples=4, seed=0)
        assert sum(
            1 for w in caught if issubclass(w.category, DeprecationWarning)
        ) == 1
