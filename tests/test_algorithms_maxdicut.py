"""Tests for the MAXDICUT extension."""

import numpy as np
import pytest

from repro.algorithms.maxdicut import DirectedGraph, dicut_value, maxdicut_gw
from repro.utils.validation import ValidationError


def brute_force_dicut(graph: DirectedGraph) -> float:
    best = 0.0
    n = graph.n_vertices
    for mask in range(1 << n):
        indicator = np.array([(mask >> i) & 1 for i in range(n)], dtype=np.int8)
        best = max(best, dicut_value(graph, indicator))
    return best


class TestDirectedGraph:
    def test_basic(self):
        g = DirectedGraph(3, [(0, 1), (1, 2)])
        assert g.n_vertices == 3
        assert g.n_arcs == 2
        assert g.total_weight == 2.0

    def test_duplicate_arcs_summed(self):
        g = DirectedGraph(2, [(0, 1, 1.0), (0, 1, 2.0)])
        assert g.n_arcs == 1
        assert g.total_weight == 3.0

    def test_opposite_arcs_distinct(self):
        g = DirectedGraph(2, [(0, 1), (1, 0)])
        assert g.n_arcs == 2

    def test_self_loop_rejected(self):
        with pytest.raises(ValidationError):
            DirectedGraph(2, [(1, 1)])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValidationError):
            DirectedGraph(2, [(0, 3)])


class TestDicutValue:
    def test_simple(self):
        g = DirectedGraph(2, [(0, 1)])
        assert dicut_value(g, np.array([1, 0])) == 1.0
        assert dicut_value(g, np.array([0, 1])) == 0.0
        assert dicut_value(g, np.array([1, 1])) == 0.0

    def test_weighted(self):
        g = DirectedGraph(3, [(0, 1, 2.0), (2, 1, 3.0), (1, 0, 1.0)])
        assert dicut_value(g, np.array([1, 0, 1])) == 5.0

    def test_wrong_shape_raises(self):
        g = DirectedGraph(2, [(0, 1)])
        with pytest.raises(ValidationError):
            dicut_value(g, np.array([1]))

    def test_non_binary_raises(self):
        g = DirectedGraph(2, [(0, 1)])
        with pytest.raises(ValidationError):
            dicut_value(g, np.array([1, 2]))

    def test_no_arcs(self):
        g = DirectedGraph(3)
        assert dicut_value(g, np.zeros(3, dtype=int)) == 0.0


class TestMaxDicutGW:
    def _random_digraph(self, n, p, seed):
        rng = np.random.default_rng(seed)
        arcs = [
            (i, j)
            for i in range(n)
            for j in range(n)
            if i != j and rng.random() < p
        ]
        return DirectedGraph(n, arcs)

    def test_value_consistent_with_indicator(self):
        g = self._random_digraph(10, 0.3, seed=0)
        result = maxdicut_gw(g, n_samples=64, seed=1)
        assert result.value == pytest.approx(dicut_value(g, result.in_set))

    def test_approximation_quality_small_instances(self):
        for seed in (2, 3):
            g = self._random_digraph(8, 0.35, seed=seed)
            if g.n_arcs == 0:
                continue
            opt = brute_force_dicut(g)
            result = maxdicut_gw(g, n_samples=200, seed=seed)
            # GW-style guarantee is 0.796; allow a small stochastic margin
            assert result.value >= 0.75 * opt

    def test_single_arc_exact(self):
        g = DirectedGraph(2, [(0, 1)])
        result = maxdicut_gw(g, n_samples=64, seed=4)
        assert result.value == 1.0

    def test_requires_samples(self):
        with pytest.raises(ValidationError):
            maxdicut_gw(DirectedGraph(2, [(0, 1)]), n_samples=0)

    def test_requires_vertices(self):
        with pytest.raises(ValidationError):
            maxdicut_gw(DirectedGraph(0), n_samples=4)

    def test_sdp_objective_at_least_value(self):
        g = self._random_digraph(9, 0.3, seed=5)
        result = maxdicut_gw(g, n_samples=64, seed=6)
        assert result.sdp_objective >= result.value - 1e-6
