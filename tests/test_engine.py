"""Seeded-equivalence and behaviour tests for the batched solver engine.

The load-bearing property: for any graph and root seed, the engine's dense
fast path produces *bit-identical* cuts, cut trajectories and membrane traces
to running the sequential circuits once per trial with the matching
``SeedSequence(root, spawn_key=(i,))`` seeds.  These tests sweep that claim
across both circuits, both GW read-outs, several seeds, and structural edge
cases (0/1 trials, disconnected graphs, graphs with no edges).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.config import LIFGWConfig, LIFTrevisanConfig
from repro.circuits.lif_gw import LIFGWCircuit
from repro.circuits.lif_trevisan import LIFTrevisanCircuit
from repro.engine import (
    EarlyStopConfig,
    SolveRequest,
    sequential_solve,
    solve,
    trial_seed_sequences,
)
from repro.experiments.runner import run_circuit_trials
from repro.graphs.generators import erdos_renyi
from repro.graphs.graph import Graph
from repro.utils.rng import spawn_generators
from repro.utils.validation import ValidationError

#: Fast circuit configurations used throughout (small burn-in / interval).
GW_CONFIG = LIFGWConfig(burn_in_steps=25, sample_interval=4)
GW_SPIKE_CONFIG = LIFGWConfig(burn_in_steps=25, sample_interval=4, readout="spike")
TR_CONFIG = LIFTrevisanConfig(burn_in_steps=25, sample_interval=4)


def _disconnected_graph() -> Graph:
    """Two components plus an isolated vertex (degree-0 handling)."""
    edges = [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (5, 6)]
    return Graph(8, edges, name="disconnected8")


def _gw(graph, config=GW_CONFIG, seed=11):
    return LIFGWCircuit(graph, config=config, seed=seed)


def _tr(graph, config=TR_CONFIG):
    return LIFTrevisanCircuit(graph, config=config)


def _assert_bit_identical(result, reference):
    assert result.n_rounds == reference.n_rounds
    assert np.array_equal(result.trajectories, reference.trajectories)
    assert np.array_equal(result.trial_best_weights, reference.trial_best_weights)
    assert np.array_equal(
        result.trial_best_assignments, reference.trial_best_assignments
    )
    assert result.best_cut.weight == reference.best_cut.weight
    assert np.array_equal(result.best_cut.assignment, reference.best_cut.assignment)


class TestSeededEquivalence:
    """engine.solve == sequential circuit loop, bit for bit (dense backend)."""

    @pytest.mark.parametrize("seed", [0, 1, 1234, 2**31])
    def test_gw_membrane_matches_sequential(self, medium_er_graph, seed):
        circuit = _gw(medium_er_graph)
        request = SolveRequest(circuit=circuit, n_trials=5, n_samples=12, seed=seed)
        _assert_bit_identical(solve(request), sequential_solve(request))

    @pytest.mark.parametrize("seed", [0, 77])
    def test_gw_spike_matches_sequential(self, medium_er_graph, seed):
        circuit = _gw(medium_er_graph, config=GW_SPIKE_CONFIG)
        request = SolveRequest(circuit=circuit, n_trials=4, n_samples=10, seed=seed)
        _assert_bit_identical(solve(request), sequential_solve(request))

    @pytest.mark.parametrize("seed", [0, 77, 987654])
    def test_trevisan_matches_sequential(self, medium_er_graph, seed):
        circuit = _tr(medium_er_graph)
        request = SolveRequest(circuit=circuit, n_trials=4, n_samples=10, seed=seed)
        _assert_bit_identical(solve(request), sequential_solve(request))

    @pytest.mark.parametrize("build", [_gw, _tr], ids=["lif_gw", "lif_tr"])
    def test_seeded_sweep_many_graphs(self, build):
        """Seeded sweep across graph shapes — the property-based guarantee."""
        graphs = [
            erdos_renyi(12, 0.5, seed=1, name="er12"),
            erdos_renyi(30, 0.15, seed=2, name="er30"),
            _disconnected_graph(),
        ]
        for graph_index, graph in enumerate(graphs):
            circuit = build(graph)
            request = SolveRequest(
                circuit=circuit, n_trials=3, n_samples=8, seed=graph_index
            )
            _assert_bit_identical(solve(request), sequential_solve(request))

    def test_membrane_traces_match_sequential(self, medium_er_graph):
        """Read-out membrane rows equal the sequential subthreshold trajectory."""
        config = GW_CONFIG
        circuit = _gw(medium_er_graph)
        n_samples = 9
        request = SolveRequest(
            circuit=circuit, n_trials=3, n_samples=n_samples, seed=99,
            record_potentials=True,
        )
        result = solve(request)
        n_steps = config.burn_in_steps + n_samples * config.sample_interval
        for i, trial_seed in enumerate(trial_seed_sequences(99, 3)):
            device_rng, _ = spawn_generators(trial_seed, 2)
            pool = circuit.build_device_pool(device_rng)
            population = circuit.build_population()
            potentials = population.run_subthreshold(
                pool.sample(n_steps), burn_in=config.burn_in_steps
            )
            rows = potentials[config.sample_interval - 1 :: config.sample_interval]
            assert np.array_equal(result.potentials[i], rows[:n_samples])

    def test_trial_results_independent_of_batch_size(self, small_er_graph):
        """Trial i's trajectory does not depend on how many trials run."""
        circuit = _gw(small_er_graph)
        small = solve(SolveRequest(circuit=circuit, n_trials=2, n_samples=8, seed=3))
        large = solve(SolveRequest(circuit=circuit, n_trials=6, n_samples=8, seed=3))
        assert np.array_equal(large.trajectories[:2], small.trajectories)

    def test_blocked_execution_is_identical(self, medium_er_graph):
        """A tiny memory cap (many trial blocks) changes nothing."""
        circuit = _gw(medium_er_graph)
        one_block = solve(
            SolveRequest(circuit=circuit, n_trials=6, n_samples=10, seed=4)
        )
        bytes_per_trial = (
            (GW_CONFIG.burn_in_steps + 10 * GW_CONFIG.sample_interval)
            * medium_er_graph.n_vertices * 8
        )
        many_blocks = solve(
            SolveRequest(
                circuit=circuit, n_trials=6, n_samples=10, seed=4,
                max_block_bytes=2 * bytes_per_trial,
            )
        )
        assert many_blocks.metadata["n_blocks"] > 1
        _assert_bit_identical(many_blocks, one_block)

    def test_circuit_method_fast_path(self, medium_er_graph):
        """The circuits' opt-in sample_cuts_batch wrapper hits the engine."""
        circuit = _tr(medium_er_graph)
        result = circuit.sample_cuts_batch(3, 8, seed=21)
        reference = sequential_solve(
            SolveRequest(circuit=circuit, n_trials=3, n_samples=8, seed=21)
        )
        _assert_bit_identical(result, reference)


class TestEdgeCases:
    def test_zero_trials(self, small_er_graph):
        result = solve(
            SolveRequest(circuit=_gw(small_er_graph), n_trials=0, n_samples=8, seed=0)
        )
        assert result.n_trials == 0
        assert result.best_cut is None
        assert result.best_weight == 0.0
        assert result.trajectories.shape == (0, 0)
        assert result.trial_best_weights.shape == (0,)

    def test_single_trial_equals_sample_cuts(self, small_er_graph):
        circuit = _gw(small_er_graph)
        result = solve(
            SolveRequest(circuit=circuit, n_trials=1, n_samples=10, seed=8)
        )
        direct = circuit.sample_cuts(
            10, seed=np.random.SeedSequence(entropy=8, spawn_key=(0,))
        )
        assert np.array_equal(result.trajectories[0], direct.trajectory.weights)
        assert result.best_cut.weight == direct.best_cut.weight
        assert np.array_equal(result.best_cut.assignment, direct.best_cut.assignment)

    def test_disconnected_graph_runs_both_circuits(self):
        graph = _disconnected_graph()
        for build in (_gw, _tr):
            request = SolveRequest(circuit=build(graph), n_trials=2, n_samples=6, seed=5)
            _assert_bit_identical(solve(request), sequential_solve(request))

    def test_edgeless_graph_gives_zero_cuts(self):
        graph = Graph(4, [], name="no_edges")
        result = solve(
            SolveRequest(circuit=_tr(graph), n_trials=2, n_samples=5, seed=0)
        )
        assert result.best_weight == 0.0
        assert np.all(result.trajectories == 0.0)

    def test_invalid_request_parameters(self, small_er_graph):
        with pytest.raises(ValidationError):
            SolveRequest(circuit="lif_gw", graph=small_er_graph, n_trials=-1)
        with pytest.raises(ValidationError):
            SolveRequest(circuit="lif_gw", graph=small_er_graph, n_samples=0)
        with pytest.raises(ValidationError):
            SolveRequest(circuit="lif_gw")  # graph required for named circuits
        with pytest.raises(ValidationError):
            solve(SolveRequest(circuit="unknown", graph=small_er_graph))

    def test_named_circuit_construction(self, small_er_graph):
        """The engine builds circuits from names, SDP seeding included."""
        result = solve(
            SolveRequest(
                circuit="lif_gw", graph=small_er_graph, n_trials=2, n_samples=6,
                seed=13, config=GW_CONFIG,
            )
        )
        assert result.circuit_name == "lif_gw"
        assert result.n_rounds == 6
        assert result.best_weight > 0


class TestEarlyStop:
    def test_early_stop_truncates_rounds(self, medium_er_graph):
        circuit = _gw(medium_er_graph)
        request = SolveRequest(
            circuit=circuit, n_trials=4, n_samples=300, seed=5,
            early_stop=EarlyStopConfig(patience=6, min_rounds=10),
        )
        result = solve(request)
        assert result.early_stopped
        assert result.n_rounds < 300
        assert result.trajectories.shape == (4, result.n_rounds)
        assert result.metadata["early_stop_round"] == result.n_rounds - 1
        # The simulated prefix is still bit-identical to the sequential run.
        reference = sequential_solve(
            SolveRequest(circuit=circuit, n_trials=4, n_samples=result.n_rounds, seed=5)
        )
        assert np.array_equal(result.trajectories, reference.trajectories)

    def test_ceiling_stops_on_perfect_cut(self, small_bipartite):
        """A bipartite graph's full cut terminates the batch immediately."""
        circuit = _tr(small_bipartite)
        request = SolveRequest(
            circuit=circuit, n_trials=2, n_samples=400, seed=1,
            early_stop=EarlyStopConfig(patience=200, min_rounds=1),
        )
        result = solve(request)
        assert result.best_weight == small_bipartite.total_weight
        assert result.early_stopped
        assert result.n_rounds < 400

    def test_no_early_stop_without_config(self, small_bipartite):
        """Without an early-stop rule, even a perfect cut never truncates."""
        circuit = _tr(small_bipartite)
        result = solve(
            SolveRequest(circuit=circuit, n_trials=1, n_samples=30, seed=1)
        )
        assert result.n_rounds == 30
        assert not result.early_stopped
        assert result.metadata["early_stop_round"] is None

    def test_early_stop_with_multiple_blocks(self, medium_er_graph):
        """Later blocks replay the truncated round count and stay rectangular."""
        circuit = _gw(medium_er_graph)
        n_samples = 300
        bytes_per_trial = (
            (GW_CONFIG.burn_in_steps + n_samples * GW_CONFIG.sample_interval)
            * medium_er_graph.n_vertices * 8
        )
        result = solve(
            SolveRequest(
                circuit=circuit, n_trials=6, n_samples=n_samples, seed=5,
                early_stop=EarlyStopConfig(patience=6, min_rounds=10),
                max_block_bytes=2 * bytes_per_trial,
            )
        )
        assert result.metadata["n_blocks"] > 1
        assert result.early_stopped
        assert result.n_rounds < n_samples
        assert result.trajectories.shape == (6, result.n_rounds)
        # Every trial — including those in post-stop blocks — produced cuts.
        assert np.all(result.trial_best_weights > 0)


class TestResultApi:
    def test_circuit_result_view(self, medium_er_graph):
        circuit = _gw(medium_er_graph)
        result = solve(SolveRequest(circuit=circuit, n_trials=3, n_samples=8, seed=2))
        view = result.circuit_result(1)
        assert view.n_samples == 8
        assert view.best_cut.weight == result.trial_best_weights[1]
        assert view.trajectory.weights.shape == (8,)
        with pytest.raises(ValidationError):
            result.circuit_result(3)

    def test_record_assignments(self, small_er_graph):
        circuit = _gw(small_er_graph)
        result = solve(
            SolveRequest(
                circuit=circuit, n_trials=2, n_samples=6, seed=2,
                record_assignments=True,
            )
        )
        assert result.assignments.shape == (2, 6, small_er_graph.n_vertices)
        assert set(np.unique(result.assignments)) <= {-1, 1}
        # Recorded assignments reproduce the recorded trajectories.
        from repro.cuts.cut import cut_weights_batch

        for t in range(2):
            weights = cut_weights_batch(small_er_graph, result.assignments[t])
            assert np.array_equal(weights, result.trajectories[t])

    def test_samples_per_second_positive(self, small_er_graph):
        result = solve(
            SolveRequest(circuit=_gw(small_er_graph), n_trials=2, n_samples=5, seed=0)
        )
        assert result.samples_per_second > 0
        assert result.elapsed_seconds > 0


class TestEngineCli:
    def test_engine_command_runs_and_saves(self, tmp_path, capsys):
        from repro.cli import main
        from repro.experiments.runner import load_results

        out = tmp_path / "engine.json"
        code = main([
            "--seed", "3", "--save", str(out),
            "engine", "--er", "20", "0.3", "--trials", "3", "--samples", "8",
        ])
        assert code == 0
        captured = capsys.readouterr().out
        assert "3 trials x 8 read-outs" in captured
        record = load_results(out)
        assert record.experiment == "engine"
        assert record.result_type() == "SolveResult"
        assert record.results[0]["n_trials"] == 3

    def test_engine_command_rejects_unknown_backend_before_solving(self, capsys):
        from repro.cli import main

        code = main(["engine", "--er", "20", "0.3", "--backend", "spare"])
        assert code == 2
        assert "unknown backend spec 'spare'" in capsys.readouterr().err

    def test_engine_command_early_stop_fires_on_short_runs(self, capsys):
        """--early-stop-patience must be able to fire below 64 samples."""
        from repro.cli import main

        code = main([
            "engine", "--circuit", "lif_tr", "--er", "12", "0.5",
            "--trials", "2", "--samples", "40", "--early-stop-patience", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "early-stopped at" in out

    def test_engine_command_compare(self, capsys):
        from repro.cli import main

        code = main([
            "engine", "--er", "16", "0.4", "--trials", "2", "--samples", "6",
            "--compare",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "per-trial bests match: True" in out


class TestRunnerIntegration:
    def test_run_circuit_trials_engine_vs_sequential(self, small_er_graph):
        engine_result = run_circuit_trials(
            small_er_graph, circuit="lif_tr", n_trials=3, n_samples=6, seed=7,
            config=TR_CONFIG,
        )
        reference = run_circuit_trials(
            small_er_graph, circuit="lif_tr", n_trials=3, n_samples=6, seed=7,
            config=TR_CONFIG, use_engine=False,
        )
        _assert_bit_identical(engine_result, reference)

    def test_run_circuit_trials_accepts_instance(self, small_er_graph):
        circuit = _gw(small_er_graph)
        result = run_circuit_trials(
            circuit=circuit, graph=None, n_trials=2, n_samples=5, seed=1
        )
        assert result.n_trials == 2
        assert result.graph_name == small_er_graph.name

    def test_run_circuit_trials_rejects_conflicting_arguments(self, small_er_graph):
        """config (or a foreign graph) with an instance circuit is an error."""
        circuit = _gw(small_er_graph)
        with pytest.raises(ValidationError):
            run_circuit_trials(
                circuit=circuit, graph=None, config=GW_CONFIG, n_trials=1, n_samples=4
            )
        other = erdos_renyi(10, 0.5, seed=9)
        with pytest.raises(ValidationError):
            run_circuit_trials(circuit=circuit, graph=other, n_trials=1, n_samples=4)
        # The instance's own graph is accepted.
        result = run_circuit_trials(
            circuit=circuit, graph=small_er_graph, n_trials=1, n_samples=4, seed=0
        )
        assert result.n_trials == 1


class TestCoalesce:
    """The batch merge/split seams behind the solve service's coalescing."""

    def test_coalesced_batch_is_bit_identical_per_request(self, medium_er_graph):
        from repro.engine import coalesce_requests, split_result

        circuit = _tr(medium_er_graph)
        requests = [
            SolveRequest(circuit=circuit, n_trials=t, n_samples=8, seed=s)
            for t, s in [(2, 11), (3, 7), (1, 11), (4, 0)]
        ]
        merged, slices = coalesce_requests(requests)
        assert merged.n_trials == sum(r.n_trials for r in requests)
        assert [hi - lo for lo, hi in slices] == [2, 3, 1, 4]
        parts = split_result(solve(merged), slices)
        for request, part in zip(requests, parts):
            standalone = solve(request)
            _assert_bit_identical(part, standalone)
            assert part.metadata["coalesced"] is True
            assert part.metadata["batch_trials"] == merged.n_trials

    def test_explicit_trial_seeds_match_root_derivation(self, small_er_graph):
        circuit = _tr(small_er_graph)
        seeds = tuple(trial_seed_sequences(5, 3))
        explicit = solve(SolveRequest(
            circuit=circuit, n_trials=3, n_samples=6, trial_seeds=seeds
        ))
        derived = solve(SolveRequest(circuit=circuit, n_trials=3, n_samples=6, seed=5))
        _assert_bit_identical(explicit, derived)

    def test_trial_seeds_validation(self, small_er_graph):
        circuit = _tr(small_er_graph)
        with pytest.raises(ValidationError):
            SolveRequest(circuit=circuit, n_trials=2, trial_seeds=(np.random.SeedSequence(0),))
        with pytest.raises(ValidationError):
            SolveRequest(circuit=circuit, n_trials=1, trial_seeds=(123,))

    def test_coalesce_rejects_shape_mismatches(self, small_er_graph):
        from repro.engine import coalesce_requests

        circuit = _tr(small_er_graph)
        other = _tr(erdos_renyi(12, 0.4, seed=3))
        base = SolveRequest(circuit=circuit, n_trials=1, n_samples=8, seed=0)
        with pytest.raises(ValidationError):
            coalesce_requests([])
        with pytest.raises(ValidationError):
            coalesce_requests([base, SolveRequest(circuit=other, n_trials=1, n_samples=8)])
        with pytest.raises(ValidationError):
            coalesce_requests([base, SolveRequest(circuit=circuit, n_trials=1, n_samples=4)])
        with pytest.raises(ValidationError):
            coalesce_requests([base, SolveRequest(
                circuit=circuit, n_trials=1, n_samples=8, backend="dense"
            )])
        with pytest.raises(ValidationError):
            coalesce_requests([base, SolveRequest(
                circuit=circuit, n_trials=1, n_samples=8,
                early_stop=EarlyStopConfig(patience=1, min_rounds=1),
            )])
        # By-name requests must be resolved to an instance first.
        with pytest.raises(ValidationError):
            coalesce_requests([SolveRequest(
                circuit="lif_tr", graph=small_er_graph, n_trials=1, n_samples=8
            )])

    def test_split_result_slice_validation(self, small_er_graph):
        from repro.engine import split_result

        result = solve(SolveRequest(
            circuit=_tr(small_er_graph), n_trials=2, n_samples=4, seed=0
        ))
        with pytest.raises(ValidationError):
            split_result(result, [(0, 3)])
        with pytest.raises(ValidationError):
            split_result(result, [(1, 1)])

    def test_single_request_coalesce_round_trips(self, small_er_graph):
        # A batch of one is legal: the merged request is the request, and
        # the split part is bit-identical to a standalone run.  Pinned
        # because the serve worker takes this path whenever the queue holds
        # exactly one job.
        from repro.engine import coalesce_requests, split_result

        circuit = _tr(small_er_graph)
        request = SolveRequest(circuit=circuit, n_trials=3, n_samples=8, seed=4)
        merged, slices = coalesce_requests([request])
        assert slices == [(0, 3)]
        assert merged.n_trials == 3
        part, = split_result(solve(merged), slices)
        _assert_bit_identical(part, solve(request))
        # Even a batch of one carries the batch markers — the flag records
        # the code path taken, not the occupancy.
        assert part.metadata["coalesced"] is True
        assert part.metadata["batch_trials"] == 3

    def test_split_result_rejects_empty_and_reversed_ranges(self, small_er_graph):
        # Empty trial ranges are refused loudly (a zero-trial response has
        # no best cut to report), as are reversed and negative ranges.
        from repro.engine import split_result

        result = solve(SolveRequest(
            circuit=_tr(small_er_graph), n_trials=3, n_samples=4, seed=1
        ))
        for lo, hi in [(0, 0), (3, 3), (2, 1), (-1, 1)]:
            with pytest.raises(ValidationError):
                split_result(result, [(lo, hi)])
        # A valid slice among invalid ones still fails atomically.
        with pytest.raises(ValidationError):
            split_result(result, [(0, 2), (2, 2)])


class TestDeadline:
    """Budget.max_seconds / served timeouts as a real engine deadline."""

    def test_tight_deadline_returns_partial_valid_best(self, medium_er_graph):
        from repro.cuts.cut import cut_weight

        request = SolveRequest(
            circuit=_tr(medium_er_graph), n_trials=4, n_samples=400,
            seed=3, deadline_seconds=1e-4,
        )
        result = solve(request)
        # Truncated well short of the ask, but never below one round...
        assert 1 <= result.n_rounds < 400
        assert result.metadata["deadline_exceeded"] is True
        assert result.trajectories.shape == (4, result.n_rounds)
        # ...and the returned bests are real cuts of the graph.
        for trial in range(4):
            weight = cut_weight(medium_er_graph, result.trial_best_assignments[trial])
            assert weight == result.trial_best_weights[trial]
        assert result.best_cut.weight == result.trial_best_weights.max()

    def test_deadline_prefix_matches_unconstrained_run(self, small_er_graph):
        """Completed rounds under a deadline equal the unconstrained prefix."""
        circuit = _tr(small_er_graph)
        free = solve(SolveRequest(circuit=circuit, n_trials=2, n_samples=50, seed=9))
        capped = solve(SolveRequest(
            circuit=circuit, n_trials=2, n_samples=50, seed=9,
            deadline_seconds=1e-4,
        ))
        n = capped.n_rounds
        assert np.array_equal(capped.trajectories, free.trajectories[:, :n])

    def test_generous_deadline_changes_nothing(self, small_er_graph):
        circuit = _tr(small_er_graph)
        free = solve(SolveRequest(circuit=circuit, n_trials=2, n_samples=10, seed=1))
        capped = solve(SolveRequest(
            circuit=circuit, n_trials=2, n_samples=10, seed=1, deadline_seconds=3600.0
        ))
        _assert_bit_identical(capped, free)
        assert capped.metadata["deadline_exceeded"] is False

    def test_deadline_validation(self, small_er_graph):
        with pytest.raises(ValidationError):
            SolveRequest(
                circuit=_tr(small_er_graph), n_trials=1, deadline_seconds=0.0
            )
        with pytest.raises(ValidationError):
            SolveRequest(
                circuit=_tr(small_er_graph), n_trials=1, deadline_seconds=-1.0
            )
