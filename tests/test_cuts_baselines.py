"""Tests for random cuts, local search, and the exact MAXCUT solver."""

import numpy as np
import pytest

from repro.cuts.cut import cut_weight
from repro.cuts.exact import MAX_EXACT_VERTICES, exact_maxcut, exact_maxcut_value
from repro.cuts.local_search import greedy_improve, local_search_maxcut
from repro.cuts.random_cut import best_random_cut, random_cut, random_cuts_batch
from repro.graphs.generators import (
    complete_bipartite,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    path_graph,
)
from repro.graphs.graph import Graph
from repro.utils.validation import ValidationError


class TestRandomCut:
    def test_valid_assignment(self, small_er_graph):
        c = random_cut(small_er_graph, seed=1)
        assert c.n_vertices == small_er_graph.n_vertices
        assert set(np.unique(c.assignment)).issubset({-1, 1})

    def test_reproducible(self, small_er_graph):
        assert random_cut(small_er_graph, seed=5) == random_cut(small_er_graph, seed=5)

    def test_batch_shapes(self, small_er_graph):
        assignments, weights = random_cuts_batch(small_er_graph, 32, seed=2)
        assert assignments.shape == (32, small_er_graph.n_vertices)
        assert weights.shape == (32,)

    def test_batch_zero_samples(self, small_er_graph):
        assignments, weights = random_cuts_batch(small_er_graph, 0, seed=2)
        assert assignments.shape[0] == 0
        assert weights.shape == (0,)

    def test_batch_negative_raises(self, small_er_graph):
        with pytest.raises(ValidationError):
            random_cuts_batch(small_er_graph, -1)

    def test_best_random_cut_is_max(self, small_er_graph):
        best = best_random_cut(small_er_graph, 64, seed=3)
        _, weights = random_cuts_batch(small_er_graph, 64, seed=3)
        assert best.weight == pytest.approx(weights.max())

    def test_best_random_requires_samples(self, small_er_graph):
        with pytest.raises(ValidationError):
            best_random_cut(small_er_graph, 0)

    def test_random_cut_mean_near_half_edges(self):
        g = erdos_renyi(60, 0.3, seed=4)
        _, weights = random_cuts_batch(g, 400, seed=5)
        assert abs(weights.mean() - g.total_weight / 2) < 0.05 * g.total_weight


class TestExactMaxcut:
    def test_triangle(self, triangle):
        assert exact_maxcut_value(triangle) == 2.0

    def test_even_cycle(self, square_cycle):
        assert exact_maxcut_value(square_cycle) == 4.0

    def test_odd_cycle(self, five_cycle):
        assert exact_maxcut_value(five_cycle) == 4.0

    def test_bipartite_full_weight(self, small_bipartite):
        assert exact_maxcut_value(small_bipartite) == small_bipartite.total_weight

    def test_complete_graph_formula(self):
        # MAXCUT(K_n) = floor(n/2) * ceil(n/2)
        for n in (4, 5, 6, 7):
            assert exact_maxcut_value(complete_graph(n)) == (n // 2) * ((n + 1) // 2)

    def test_path(self):
        assert exact_maxcut_value(path_graph(6)) == 5.0

    def test_weighted(self, weighted_graph):
        # by hand: the best bipartition is {0,2} vs {1,3} (or {0,3} vs {1,2}), value 6.5
        value = exact_maxcut_value(weighted_graph)
        assert value == pytest.approx(6.5)

    def test_assignment_achieves_value(self, small_er_graph):
        cut = exact_maxcut(small_er_graph)
        assert cut_weight(small_er_graph, cut.assignment) == cut.weight

    def test_too_large_raises(self):
        with pytest.raises(ValidationError):
            exact_maxcut(erdos_renyi(MAX_EXACT_VERTICES + 1, 0.1, seed=0))

    def test_single_vertex(self):
        assert exact_maxcut_value(Graph(1)) == 0.0

    def test_empty_graph(self):
        assert exact_maxcut_value(Graph(0)) == 0.0

    def test_block_size_independent(self, small_er_graph):
        a = exact_maxcut(small_er_graph, block_size=64).weight
        b = exact_maxcut(small_er_graph, block_size=1 << 14).weight
        assert a == b


class TestLocalSearch:
    def test_improves_or_keeps(self, small_er_graph, rng):
        start = np.where(rng.random(small_er_graph.n_vertices) < 0.5, 1, -1)
        improved = greedy_improve(small_er_graph, start)
        assert improved.weight >= cut_weight(small_er_graph, start)

    def test_local_optimum_at_least_half(self, medium_er_graph):
        cut = local_search_maxcut(medium_er_graph, n_restarts=2, seed=1)
        assert cut.weight >= medium_er_graph.total_weight / 2

    def test_reaches_optimum_on_small_graphs(self, small_er_graph):
        best = local_search_maxcut(small_er_graph, n_restarts=10, seed=2)
        assert best.weight <= exact_maxcut_value(small_er_graph)
        assert best.weight >= 0.9 * exact_maxcut_value(small_er_graph)

    def test_bipartite_optimum(self, small_bipartite):
        cut = local_search_maxcut(small_bipartite, n_restarts=5, seed=3)
        assert cut.weight == small_bipartite.total_weight

    def test_empty_graph(self):
        g = Graph(0)
        cut = greedy_improve(g, np.zeros(0, dtype=np.int8))
        assert cut.weight == 0.0

    def test_invalid_restarts(self, triangle):
        with pytest.raises(ValueError):
            local_search_maxcut(triangle, n_restarts=0)
