"""Tests for SDP rounding schemes and MAXCUT upper bounds."""

import numpy as np
import pytest

from repro.cuts.exact import exact_maxcut_value
from repro.graphs.generators import complete_bipartite, complete_graph, cycle_graph, erdos_renyi
from repro.sdp.bounds import sdp_upper_bound, spectral_upper_bound, trivial_upper_bound
from repro.sdp.burer_monteiro import solve_maxcut_sdp
from repro.sdp.rounding import best_hyperplane_cut, gaussian_rounding, hyperplane_rounding
from repro.utils.validation import ValidationError


class TestHyperplaneRounding:
    def test_shapes(self, small_er_graph):
        sdp = solve_maxcut_sdp(small_er_graph, rank=4, seed=0)
        assignments, weights = hyperplane_rounding(small_er_graph, sdp.vectors, 16, seed=1)
        assert assignments.shape == (16, small_er_graph.n_vertices)
        assert weights.shape == (16,)
        assert set(np.unique(assignments)).issubset({-1, 1})

    def test_antipodal_vectors_give_full_bipartite_cut(self, small_bipartite):
        W = np.zeros((small_bipartite.n_vertices, 2))
        W[:3, 0] = 1.0
        W[3:, 0] = -1.0
        _, weights = hyperplane_rounding(small_bipartite, W, 8, seed=2)
        np.testing.assert_allclose(weights, small_bipartite.total_weight)

    def test_gw_expectation_bound(self):
        # E[cut] >= 0.878 * SDP objective (statistically, with margin)
        g = erdos_renyi(20, 0.4, seed=3)
        sdp = solve_maxcut_sdp(g, rank=7, seed=4)
        _, weights = hyperplane_rounding(g, sdp.vectors, 500, seed=5)
        assert weights.mean() >= 0.83 * sdp.objective

    def test_best_cut_below_optimum(self, small_er_graph):
        sdp = solve_maxcut_sdp(small_er_graph, rank=6, seed=6)
        best = best_hyperplane_cut(small_er_graph, sdp.vectors, 200, seed=7)
        assert best.weight <= exact_maxcut_value(small_er_graph) + 1e-9

    def test_gaussian_equals_hyperplane_distributionally(self, small_er_graph):
        sdp = solve_maxcut_sdp(small_er_graph, rank=4, seed=8)
        _, w1 = hyperplane_rounding(small_er_graph, sdp.vectors, 400, seed=9)
        _, w2 = gaussian_rounding(small_er_graph, sdp.vectors, 400, seed=10)
        # same distribution: means within a few standard errors
        assert abs(w1.mean() - w2.mean()) < 4 * (w1.std() / np.sqrt(400) + w2.std() / np.sqrt(400))

    def test_wrong_vector_shape_raises(self, triangle):
        with pytest.raises(ValidationError):
            hyperplane_rounding(triangle, np.ones((5, 2)), 4)

    def test_negative_samples_raises(self, triangle):
        with pytest.raises(ValidationError):
            hyperplane_rounding(triangle, np.ones((3, 2)), -1)

    def test_zero_samples(self, triangle):
        assignments, weights = hyperplane_rounding(triangle, np.ones((3, 2)), 0)
        assert weights.shape == (0,)

    def test_best_requires_positive_samples(self, triangle):
        with pytest.raises(ValidationError):
            best_hyperplane_cut(triangle, np.ones((3, 2)), 0)

    def test_reproducible(self, small_er_graph):
        sdp = solve_maxcut_sdp(small_er_graph, rank=4, seed=11)
        a = hyperplane_rounding(small_er_graph, sdp.vectors, 10, seed=12)[1]
        b = hyperplane_rounding(small_er_graph, sdp.vectors, 10, seed=12)[1]
        np.testing.assert_array_equal(a, b)


class TestBounds:
    def test_trivial_bound(self, small_er_graph):
        assert trivial_upper_bound(small_er_graph) == small_er_graph.total_weight

    def test_spectral_bound_above_optimum(self, small_er_graph):
        assert spectral_upper_bound(small_er_graph) >= exact_maxcut_value(small_er_graph) - 1e-9

    def test_spectral_bound_at_most_trivial(self, small_er_graph):
        assert spectral_upper_bound(small_er_graph) <= trivial_upper_bound(small_er_graph)

    def test_spectral_bound_tight_for_bipartite(self, square_cycle):
        assert spectral_upper_bound(square_cycle) == pytest.approx(4.0)

    def test_sdp_bound_above_optimum(self, small_er_graph):
        assert sdp_upper_bound(small_er_graph, seed=0) >= exact_maxcut_value(small_er_graph) - 1e-6

    def test_sdp_bound_empty_graph(self, empty_graph):
        assert sdp_upper_bound(empty_graph) == 0.0

    def test_spectral_bound_empty_graph(self, empty_graph):
        assert spectral_upper_bound(empty_graph) == 0.0

    def test_spectral_bound_tiny_graph(self, triangle):
        assert spectral_upper_bound(triangle) >= 2.0
