"""Tests for the analysis subpackage: statistics, convergence, ratios, scaling."""

import numpy as np
import pytest

from repro.analysis.convergence import (
    ConvergenceCurve,
    convergence_curve,
    relative_to_reference,
    running_best,
    sample_points_log_spaced,
)
from repro.analysis.ratios import approximation_ratio, relative_cut_weight
from repro.analysis.scaling import (
    HardwareModel,
    samples_in_time,
    software_equivalent_samples,
    throughput_report,
)
from repro.analysis.statistics import (
    bootstrap_confidence_interval,
    mean_and_sem,
    summarize_samples,
)
from repro.utils.validation import ValidationError


class TestStatistics:
    def test_mean_and_sem(self):
        mean, sem = mean_and_sem(np.array([1.0, 2.0, 3.0, 4.0]))
        assert mean == 2.5
        assert sem == pytest.approx(np.std([1, 2, 3, 4], ddof=1) / 2.0)

    def test_single_sample_sem_zero(self):
        mean, sem = mean_and_sem(np.array([5.0]))
        assert mean == 5.0 and sem == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValidationError):
            mean_and_sem(np.zeros(0))

    def test_bootstrap_contains_mean(self, rng):
        samples = rng.normal(10.0, 1.0, size=200)
        low, high = bootstrap_confidence_interval(samples, seed=1)
        assert low <= samples.mean() <= high
        assert high - low < 1.0

    def test_bootstrap_invalid_confidence(self):
        with pytest.raises(ValidationError):
            bootstrap_confidence_interval(np.ones(10), confidence=1.5)

    def test_summarize(self):
        stats = summarize_samples(np.array([1.0, 2.0, 3.0]))
        assert stats.n == 3
        assert stats.minimum == 1.0
        assert stats.maximum == 3.0
        assert stats.median == 2.0

    def test_summarize_single(self):
        stats = summarize_samples(np.array([4.0]))
        assert stats.std == 0.0


class TestConvergence:
    def test_running_best(self):
        np.testing.assert_array_equal(running_best(np.array([2.0, 1.0, 5.0])), [2, 2, 5])

    def test_running_best_empty(self):
        assert running_best(np.zeros(0)).shape == (0,)

    def test_relative_to_reference(self):
        np.testing.assert_allclose(relative_to_reference(np.array([5.0, 10.0]), 10.0), [0.5, 1.0])

    def test_relative_invalid_reference(self):
        with pytest.raises(ValidationError):
            relative_to_reference(np.ones(2), 0.0)

    def test_sample_points_properties(self):
        points = sample_points_log_spaced(1000, 15)
        assert points[0] >= 1
        assert points[-1] == 1000
        assert np.all(np.diff(points) > 0)

    def test_sample_points_small_n(self):
        points = sample_points_log_spaced(3, 20)
        assert points[-1] == 3
        assert len(points) <= 3

    def test_convergence_curve(self):
        weights = np.array([1.0, 4.0, 2.0, 6.0, 3.0])
        curve = convergence_curve(weights, sample_counts=np.array([1, 3, 5]), reference=6.0)
        np.testing.assert_allclose(curve.values, [1 / 6, 4 / 6, 1.0])
        assert curve.final_value == 1.0

    def test_convergence_curve_default_counts(self):
        curve = convergence_curve(np.arange(1, 101, dtype=float))
        assert curve.sample_counts[-1] == 100

    def test_convergence_curve_invalid_counts(self):
        with pytest.raises(ValidationError):
            convergence_curve(np.ones(5), sample_counts=np.array([0]))

    def test_curve_validation(self):
        with pytest.raises(ValidationError):
            ConvergenceCurve(sample_counts=np.array([1, 2]), values=np.array([1.0]))


class TestRatios:
    def test_approximation_ratio(self):
        assert approximation_ratio(87.8, 100.0) == pytest.approx(0.878)

    def test_zero_optimum_convention(self):
        assert approximation_ratio(0.0, 0.0) == 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            approximation_ratio(-1.0, 5.0)

    def test_relative_cut_weight_can_exceed_one(self):
        assert relative_cut_weight(105.0, 100.0) == pytest.approx(1.05)

    def test_relative_zero_reference(self):
        assert relative_cut_weight(3.0, 0.0) == 1.0


class TestScaling:
    def test_hardware_model_throughput(self):
        model = HardwareModel(lif_time_constant_s=1e-9, steps_per_sample=10)
        assert model.samples_per_second == pytest.approx(1e8)

    def test_samples_in_time(self):
        model = HardwareModel(lif_time_constant_s=1e-9, steps_per_sample=10)
        assert samples_in_time(model, 1e-2) == 10**6

    def test_paper_claim_millions_during_spectral_solve(self):
        """Paper §VI: millions of hardware samples during a ~10 ms software solve."""
        model = HardwareModel()
        assert software_equivalent_samples(model, 1e-2) >= 10**6

    def test_paper_claim_billions_during_sdp_solve(self):
        model = HardwareModel()
        assert software_equivalent_samples(model, 10.0) >= 10**9

    def test_throughput_report_keys(self):
        report = throughput_report(HardwareModel())
        for key in (
            "hardware_samples_per_second",
            "samples_during_spectral_solve",
            "samples_during_sdp_solve",
        ):
            assert key in report

    def test_invalid_model(self):
        with pytest.raises(ValidationError):
            HardwareModel(lif_time_constant_s=0.0)
        with pytest.raises(ValidationError):
            HardwareModel(steps_per_sample=0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValidationError):
            samples_in_time(HardwareModel(), -1.0)
