"""Tests for the sharded-execution CLI surface: ``run --shards/--resume``,
``repro merge`` and ``repro bench``."""

import json
import os

import pytest

from repro.cli import build_parser, main

#: Keys holding wall-clock measurements — never compared across runs.
_TIMING_KEYS = {
    "created_at",
    "elapsed_seconds",
    "arena_elapsed_seconds",
    "engine_elapsed_seconds",
    "shard_elapsed_seconds",
    "samples_per_second",
    "n_unit_blocks",
    "distrib",
}

_ARENA_ARGS = [
    "run", "arena", "--trials", "2", "--samples", "8",
    "--param", "solvers=lif_tr,random", "--param", "suite=structured-small",
]


def _scrub(value):
    if isinstance(value, dict):
        return {k: _scrub(v) for k, v in value.items() if k not in _TIMING_KEYS}
    if isinstance(value, list):
        return [_scrub(v) for v in value]
    return value


class TestRunShardFlags:
    def test_parser_exposes_shard_flags(self):
        args = build_parser().parse_args(
            ["run", "arena", "--shards", "4", "--checkpoint-dir", "d", "--resume"]
        )
        assert args.shards == 4
        assert args.checkpoint_dir == "d"
        assert args.resume is True

    def test_sharded_run_writes_checkpoints_and_matches_monolithic(
        self, tmp_path, capsys
    ):
        mono_file = tmp_path / "mono.json"
        shard_file = tmp_path / "sharded.json"
        ckpt = tmp_path / "ckpt"
        assert main(_ARENA_ARGS + ["--save", str(mono_file)]) == 0
        assert main(_ARENA_ARGS + [
            "--shards", "3", "--checkpoint-dir", str(ckpt),
            "--save", str(shard_file),
        ]) == 0
        out = capsys.readouterr().out
        assert "shards: 3" in out
        assert sorted(os.listdir(ckpt)) == [
            "manifest.json", "shard-0000.json", "shard-0001.json",
            "shard-0002.json",
        ]
        mono = json.loads(mono_file.read_text())
        sharded = json.loads(shard_file.read_text())
        assert _scrub(mono["results"]) == _scrub(sharded["results"])
        assert _scrub(mono["config"]["leaderboard"]) == \
            _scrub(sharded["config"]["leaderboard"])

    def test_resume_skips_completed_shards(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        assert main(_ARENA_ARGS + ["--shards", "3", "--checkpoint-dir", str(ckpt)]) == 0
        os.unlink(ckpt / "shard-0001.json")
        capsys.readouterr()
        assert main(_ARENA_ARGS + [
            "--shards", "3", "--checkpoint-dir", str(ckpt), "--resume",
        ]) == 0
        assert "resumed 2 completed shard(s)" in capsys.readouterr().out

    def test_shard_zero_is_friendly_error(self, capsys):
        assert main(["run", "arena", "--shards", "0"]) == 2
        assert "shards must be" in capsys.readouterr().err

    def test_worker_mode_one_shard_per_invocation_then_merge(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        worker = _ARENA_ARGS + ["--shards", "2", "--checkpoint-dir", str(ckpt)]
        assert main(worker + ["--shard-index", "0"]) == 0
        out = capsys.readouterr().out
        assert "shard 0/2 completed" in out and "waiting on shard(s) [1]" in out
        assert main(worker + ["--shard-index", "1"]) == 0
        out = capsys.readouterr().out
        assert "all 2 shards complete" in out and "repro merge" in out
        assert main(["merge", str(ckpt)]) == 0
        # A worker re-running its shard (the crash-restart case) skips it.
        assert main(worker + ["--shard-index", "0"]) == 0
        capsys.readouterr()

    def test_worker_mode_requires_checkpoint_dir(self, capsys):
        assert main(["run", "arena", "--shards", "2", "--shard-index", "0"]) == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_plan_wins_over_worker_mode_and_writes_nothing(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        assert main(_ARENA_ARGS + [
            "--plan", "--shards", "2", "--shard-index", "0",
            "--checkpoint-dir", str(ckpt),
        ]) == 0
        out = capsys.readouterr().out
        assert "workload 'arena'" in out  # the plan preview rendered
        assert not ckpt.exists()  # and nothing executed or was written

    def test_worker_mode_notes_ignored_save_flag(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        assert main(_ARENA_ARGS + [
            "--shards", "2", "--shard-index", "0",
            "--checkpoint-dir", str(ckpt), "--save", str(tmp_path / "r.json"),
        ]) == 0
        captured = capsys.readouterr()
        assert "ignored in worker mode" in captured.err
        assert not (tmp_path / "r.json").exists()


class TestMergeCommand:
    def test_merge_reproduces_the_saved_run(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        run_file = tmp_path / "run.json"
        merged_file = tmp_path / "merged.json"
        assert main(_ARENA_ARGS + [
            "--shards", "2", "--checkpoint-dir", str(ckpt),
            "--save", str(run_file),
        ]) == 0
        assert main(["merge", str(ckpt), "--save", str(merged_file)]) == 0
        out = capsys.readouterr().out
        assert "merged 2 shard(s)" in out
        run_payload = json.loads(run_file.read_text())
        merged_payload = json.loads(merged_file.read_text())
        assert _scrub(run_payload["results"]) == _scrub(merged_payload["results"])
        assert _scrub(run_payload["config"]["leaderboard"]) == \
            _scrub(merged_payload["config"]["leaderboard"])

    def test_merge_incomplete_directory_names_missing_shards(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        assert main(_ARENA_ARGS + ["--shards", "2", "--checkpoint-dir", str(ckpt)]) == 0
        os.unlink(ckpt / "shard-0000.json")
        assert main(["merge", str(ckpt)]) == 2
        err = capsys.readouterr().err
        assert "missing shard(s) [0]" in err
        assert "--resume" in err

    def test_merge_non_checkpoint_directory_fails(self, tmp_path, capsys):
        assert main(["merge", str(tmp_path)]) == 2
        assert "manifest" in capsys.readouterr().err


class TestBenchCommand:
    @pytest.fixture(scope="class")
    def bench_run(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("bench") / "BENCH_4.json"
        argv = ["bench", "--quick", "--trials", "4", "--samples", "16",
                "--out", str(out)]
        return argv, out

    def test_quick_bench_writes_schema_artifact_and_bar_chart(
        self, bench_run, capsys
    ):
        argv, out = bench_run
        assert main(argv) == 0
        stdout = capsys.readouterr().out
        assert "bench speedups" in stdout  # the ascii_bar_chart leaderboard
        assert "engine:lif_gw |" in stdout
        payload = json.loads(out.read_text())
        assert payload["experiment"] == "bench"
        assert payload["config"]["metadata"]["schema"] == "repro-bench/v1"
        scenarios = {r["scenario"] for r in payload["results"]}
        assert scenarios == {
            "engine:lif_gw", "engine:lif_tr", "sharded:arena",
            "problems-compile", "serve-batching", "portfolio-route",
            "engine-tensor", "engine-instance-batch",
            "scale-generate", "sketch-vs-exact", "obs-overhead",
        }

    def test_check_passes_against_committed_baseline(self, bench_run, capsys):
        argv, _ = bench_run
        baseline = os.path.join(
            os.path.dirname(__file__), os.pardir, "benchmarks", "baseline.json"
        )
        assert main(argv + ["--check", baseline]) == 0
        assert "baseline gate: OK" in capsys.readouterr().out

    def test_check_fails_against_impossible_floors(self, bench_run, tmp_path, capsys):
        argv, _ = bench_run
        strict = tmp_path / "strict.json"
        strict.write_text(json.dumps({"min_speedup": {"engine:lif_gw": 1e9}}))
        assert main(argv + ["--check", str(strict)]) == 1
        assert "below the baseline floor" in capsys.readouterr().err

    def test_global_save_flag_is_honored(self, tmp_path, capsys):
        out = tmp_path / "B.json"
        extra = tmp_path / "extra.json"
        assert main([
            "--save", str(extra), "bench", "--quick", "--trials", "4",
            "--samples", "16", "--out", str(out),
        ]) == 0
        capsys.readouterr()
        assert json.loads(out.read_text())["experiment"] == "bench"
        assert json.loads(extra.read_text())["experiment"] == "bench"

    def test_check_with_unreadable_baseline_is_friendly_error(
        self, bench_run, tmp_path, capsys
    ):
        argv, _ = bench_run
        missing = tmp_path / "nope.json"
        assert main(argv + ["--check", str(missing)]) == 2
        assert "cannot load baseline" in capsys.readouterr().err
