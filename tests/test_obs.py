"""Tests for the observability stack (:mod:`repro.obs`).

The load-bearing claims:

* spans nest correctly through contextvars (parent/child per thread, no
  cross-thread inheritance), and the disabled path is a shared no-op that
  records nothing;
* tracing never perturbs seeding — an engine run under an active capture is
  bit-identical to the same run untraced, and the capture carries the full
  engine span taxonomy with per-round cut-evaluation accumulators;
* the metrics registry's counters/gauges/histograms read coherently, with
  the nearest-rank percentile numerically identical to the historical serve
  implementation (empty window, single sample, window eviction);
* the Prometheus text and Chrome trace-event renderings are structurally
  valid, and ``repro profile`` works for every registered workload.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.cli import main
from repro.experiments.runner import run_circuit_trials
from repro.graphs.generators import erdos_renyi
from repro.obs import (
    Histogram,
    MetricsRegistry,
    SpanRecord,
    accumulate,
    capture,
    chrome_trace,
    disable_tracing,
    enable_tracing,
    merge_summaries,
    nearest_rank_percentile,
    profile_summary,
    render_profile,
    render_prometheus,
    span,
    summarize_spans,
    suspended,
    tracing_enabled,
)
from repro.workloads import list_workloads


@pytest.fixture(autouse=True)
def _no_tracing_leaks():
    """Every test starts and ends with tracing disabled."""
    disable_tracing()
    yield
    disable_tracing()


class TestSpans:
    def test_disabled_span_is_a_shared_noop(self):
        assert not tracing_enabled()
        first = span("a", x=1)
        second = span("b")
        assert first is second  # the shared no-op: zero allocation
        with first as live:
            live.set(anything=1)
            live.add("n", 2.0)
        with capture() as trace:
            pass
        assert trace.spans == []

    def test_capture_records_parent_child_nesting(self):
        with capture() as trace:
            with span("outer", a=1):
                with span("inner"):
                    pass
        assert [s.name for s in trace.spans] == ["inner", "outer"]
        inner, outer = trace.spans
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert outer.attrs == {"a": 1}

    def test_set_and_add_mutate_the_open_span(self):
        with capture() as trace:
            with span("s") as live:
                live.set(k="v")
                live.add("count", 1)
                live.add("count", 2)
        record = trace.spans[0]
        assert record.attrs == {"k": "v", "count": 3}

    def test_accumulate_targets_the_innermost_open_span(self):
        with capture() as trace:
            accumulate("orphan", 1.0)  # no open span: dropped, no error
            with span("outer"):
                with span("inner"):
                    accumulate("x", 1.5)
                    accumulate("x", 2.0)
        inner = next(s for s in trace.spans if s.name == "inner")
        outer = next(s for s in trace.spans if s.name == "outer")
        assert inner.attrs["x"] == 3.5
        assert "x" not in outer.attrs

    def test_threads_never_inherit_a_parent_span(self):
        def worker():
            with span("thread-root"):
                pass

        with capture() as trace:
            with span("main-root"):
                thread = threading.Thread(target=worker)
                thread.start()
                thread.join()
        by_name = {s.name: s for s in trace.spans}
        assert by_name["thread-root"].parent_id is None
        assert by_name["main-root"].parent_id is None
        assert by_name["thread-root"].thread != by_name["main-root"].thread

    def test_nested_capture_observes_while_outer_owns(self):
        with capture() as outer:
            with span("a"):
                pass
            with capture() as inner:
                with span("b"):
                    pass
            assert tracing_enabled()  # inner exit must not disable
            with span("c"):
                pass
        assert not tracing_enabled()
        assert [s.name for s in inner.spans] == ["b"]
        assert [s.name for s in outer.spans] == ["a", "b", "c"]

    def test_suspended_truly_records_nothing(self):
        with capture() as trace:
            with span("kept"):
                pass
            with suspended():
                assert not tracing_enabled()
                with span("dropped"):
                    pass
            assert tracing_enabled()
            with span("kept-too"):
                pass
        assert [s.name for s in trace.spans] == ["kept", "kept-too"]

    def test_span_open_across_disable_is_dropped(self):
        enable_tracing()
        live = span("orphan")
        with live:
            disable_tracing()
        assert not tracing_enabled()
        with capture() as trace:
            pass
        assert trace.spans == []


class TestSummaries:
    def test_exclusive_time_subtracts_direct_children(self):
        spans = [
            SpanRecord("child", 2, 1, 0.1, 0.4, "main"),
            SpanRecord("child", 3, 1, 0.5, 0.3, "main"),
            SpanRecord("parent", 1, None, 0.0, 1.0, "main"),
        ]
        summary = summarize_spans(spans)
        assert summary["parent"]["count"] == 1
        assert summary["parent"]["total_seconds"] == pytest.approx(1.0)
        assert summary["parent"]["self_seconds"] == pytest.approx(0.3)
        assert summary["child"]["count"] == 2
        assert summary["child"]["self_seconds"] == pytest.approx(0.7)
        json.dumps(summary)  # the block rides into reports/checkpoints

    def test_self_seconds_never_negative(self):
        # Clock jitter can make children sum past the parent; clamp at zero.
        spans = [
            SpanRecord("child", 2, 1, 0.0, 1.5, "main"),
            SpanRecord("parent", 1, None, 0.0, 1.0, "main"),
        ]
        assert summarize_spans(spans)["parent"]["self_seconds"] == 0.0

    def test_merge_summaries_sums_per_phase(self):
        first = {"a": {"count": 1, "total_seconds": 1.0, "self_seconds": 0.5}}
        second = {
            "a": {"count": 2, "total_seconds": 3.0, "self_seconds": 1.5},
            "b": {"count": 1, "total_seconds": 0.25, "self_seconds": 0.25},
        }
        merged = merge_summaries([first, second])
        assert merged["a"] == {
            "count": 3, "total_seconds": 4.0, "self_seconds": 2.0
        }
        assert merged["b"]["count"] == 1
        assert merge_summaries([]) == {}


class TestEngineIntegration:
    def test_traced_engine_run_is_bit_identical_and_fully_instrumented(self):
        graph = erdos_renyi(18, 0.3, seed=7)
        kwargs = dict(
            graph=graph, circuit="lif_tr", n_trials=3, n_samples=12, seed=5
        )
        untraced = run_circuit_trials(**kwargs)
        with capture() as trace:
            traced = run_circuit_trials(**kwargs)
        assert np.array_equal(
            untraced.trial_best_weights, traced.trial_best_weights
        )
        assert np.array_equal(untraced.trajectories, traced.trajectories)

        names = {s.name for s in trace.spans}
        assert {
            "engine.solve", "engine.circuit_build", "engine.block",
            "engine.sample", "engine.drive", "engine.integrate",
        } <= names
        by_id = {s.span_id: s for s in trace.spans}
        block = next(s for s in trace.spans if s.name == "engine.block")
        assert by_id[block.parent_id].name == "engine.solve"
        integrate = next(s for s in trace.spans if s.name == "engine.integrate")
        assert by_id[integrate.parent_id].name == "engine.block"
        # The per-round accumulators from the cut evaluator's hot loop.
        assert integrate.attrs.get("cut_evaluations", 0) > 0
        assert integrate.attrs.get("cut_eval_seconds", 0.0) >= 0.0
        assert integrate.attrs["rounds_completed"] == 12
        solve_span = next(s for s in trace.spans if s.name == "engine.solve")
        assert solve_span.attrs["backend"] == traced.backend_name


class TestMetrics:
    def test_percentile_of_empty_window_is_zero(self):
        assert nearest_rank_percentile([], 0.50) == 0.0
        assert nearest_rank_percentile([], 0.95) == 0.0

    def test_percentile_of_single_sample_is_that_sample(self):
        for fraction in (0.0, 0.5, 0.95, 1.0):
            assert nearest_rank_percentile([7.25], fraction) == 7.25

    def test_percentile_matches_historical_serve_implementation(self):
        # The exact expression the hand-rolled SolverService._percentile used.
        rng = np.random.default_rng(3)
        for _ in range(20):
            values = rng.random(rng.integers(1, 40)).tolist()
            for fraction in (0.5, 0.95):
                ordered = sorted(values)
                index = min(
                    len(ordered) - 1, int(fraction * (len(ordered) - 1) + 0.5)
                )
                assert nearest_rank_percentile(values, fraction) == ordered[index]

    def test_histogram_window_eviction(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h_seconds", window=3)
        for value in (1.0, 2.0, 3.0, 4.0, 5.0):
            hist.observe(value)
        assert hist.window_values() == [3.0, 4.0, 5.0]
        assert hist.percentile(0.0) == 3.0  # the evicted 1.0/2.0 are gone
        assert hist.percentile(1.0) == 5.0
        # Lifetime totals are not windowed.
        assert hist.count == 5
        assert hist.sum == pytest.approx(15.0)

    def test_histogram_cumulative_buckets_end_with_inf(self):
        registry = MetricsRegistry()
        hist = registry.histogram("g_seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 2.0):
            hist.observe(value)
        buckets = hist.cumulative_buckets()
        assert buckets == [(0.1, 1), (1.0, 2), (float("inf"), 3)]

    def test_counter_labels_and_monotonicity(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total")
        counter.inc()
        counter.inc(2, reason="budget")
        counter.inc(reason="budget")
        assert counter.value() == 1
        assert counter.value(reason="budget") == 3
        assert counter.as_dict("reason") == {"budget": 3}
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_callback_shadows_static_value(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(1.0)
        gauge.set_function(lambda: 42.0)
        assert gauge.value() == 42.0
        labelled = registry.gauge("g2")
        labelled.set_function(lambda: 7.0, cache="results")
        assert labelled.value(cache="results") == 7.0

    def test_registry_get_or_create_is_idempotent_and_type_checked(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total")
        assert registry.counter("x_total") is first
        with pytest.raises(ValueError):
            registry.gauge("x_total")

    def test_snapshot_is_coherent_and_json_safe(self):
        registry = MetricsRegistry()
        registry.counter("a_total").inc(3)
        registry.gauge("b").set(1.5)
        registry.histogram("c_seconds", window=4).observe(0.2)
        snap = registry.snapshot()
        assert snap["a_total"]["series"][0]["value"] == 3
        assert snap["c_seconds"]["count"] == 1
        assert snap["c_seconds"]["p50"] == pytest.approx(0.2)
        json.dumps(snap)


class TestPrometheusExposition:
    def test_renders_counters_gauges_and_histograms(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", "things").inc(4)
        registry.gauge("repro_depth", "queue").set(2.0)
        hist = registry.histogram("repro_lat_seconds", "latency", buckets=(0.5,))
        hist.observe(0.1)
        text = render_prometheus(registry)
        assert "# HELP repro_x_total things" in text
        assert "# TYPE repro_x_total counter" in text
        assert "repro_x_total 4" in text
        assert "repro_depth 2" in text
        assert 'repro_lat_seconds_bucket{le="0.5"} 1' in text
        assert 'repro_lat_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_lat_seconds_count 1" in text
        assert text.endswith("\n")

    def test_never_incremented_counter_exposes_zero(self):
        registry = MetricsRegistry()
        registry.counter("repro_quiet_total", "nothing yet")
        assert "repro_quiet_total 0" in render_prometheus(registry)

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("repro_esc_total").inc(reason='we"ird\\nope\nline')
        text = render_prometheus(registry)
        assert r'reason="we\"ird\\nope\nline"' in text


class TestTraceRenderings:
    def _spans(self):
        with capture() as trace:
            with span("outer", n=2):
                with span("inner"):
                    pass
        return trace.spans

    def test_chrome_trace_structure(self):
        payload = chrome_trace(self._spans())
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        meta = [e for e in events if e["ph"] == "M"]
        assert {e["name"] for e in complete} == {"outer", "inner"}
        assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in complete)
        outer = next(e for e in complete if e["name"] == "outer")
        assert outer["args"] == {"n": 2}
        assert meta and meta[0]["name"] == "thread_name"
        json.dumps(payload)

    def test_chrome_trace_of_nothing_is_valid(self):
        assert chrome_trace([]) == {"traceEvents": [], "displayTimeUnit": "ms"}

    def test_profile_summary_schema(self):
        payload = profile_summary(self._spans())
        assert payload["schema"] == "repro-profile/v1"
        assert payload["n_spans"] == 2
        assert set(payload["phases"]) == {"outer", "inner"}
        assert payload["wall_seconds"] >= 0.0
        assert profile_summary([])["n_spans"] == 0

    def test_render_profile_lists_every_phase(self):
        text = render_profile(self._spans(), top=5)
        assert "outer" in text and "inner" in text
        assert "incl s" in text and "self s" in text
        assert "no spans recorded" in render_profile([])


#: Cheap parameter overrides so the every-workload profile sweep stays fast.
_QUICK_PROFILE_PARAMS = {
    "ablation": ["-p", "vertices=12", "-p", "samples=8", "-p", "n_graphs=1"],
    "arena": ["-p", "solvers=random,trevisan", "-p", "trials=1",
              "-p", "samples=8"],
    "bench": ["-p", "trials=2", "-p", "samples=8", "-p", "scale_n=200",
              "-p", "sketch_n=64", "-p", "instance_count=2",
              "-p", "instance_n=12", "-p", "instance_trials=1"],
    "evolving": ["-p", "steps=1", "-p", "deltas=2", "-p", "trials=1",
                 "-p", "samples=8"],
    "figure3": ["-p", "sizes=12", "-p", "probabilities=0.2", "-p", "trials=1",
                "-p", "samples=8"],
    "figure4": ["-p", "graphs=road-chesapeake", "-p", "samples=8"],
    "problems": ["-p", "trials=1", "-p", "samples=8"],
    "table1": ["-p", "graphs=road-chesapeake", "-p", "samples=8"],
}


class TestProfileCli:
    @pytest.mark.parametrize("workload", sorted(list_workloads()))
    def test_profile_works_for_every_registered_workload(
        self, workload, tmp_path, capsys
    ):
        out = tmp_path / f"{workload}-trace.json"
        argv = [
            "profile", workload, "--seed", "1", "--out", str(out),
            *_QUICK_PROFILE_PARAMS.get(workload, []),
        ]
        assert main(argv) == 0
        assert not tracing_enabled()  # the CLI must not leak the capture
        rendered = capsys.readouterr().out
        assert f"profile: workload {workload!r}" in rendered
        trace = json.loads(out.read_text(encoding="utf-8"))
        events = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
        assert events, f"{workload} produced an empty trace"
        assert {"session.validate", "session.execute"} <= {
            e["name"] for e in events
        }

    def test_summary_format_writes_the_aggregate(self, tmp_path, capsys):
        out = tmp_path / "summary.json"
        argv = [
            "profile", "figure3", "--seed", "2", "--format", "summary",
            "--out", str(out), *_QUICK_PROFILE_PARAMS["figure3"],
        ]
        assert main(argv) == 0
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert payload["schema"] == "repro-profile/v1"
        assert "session.execute" in payload["phases"]

    def test_sharded_profile_folds_shard_timings(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        report_path = tmp_path / "report.json"
        argv = [
            "profile", "arena", "--seed", "3", "--shards", "2",
            "--out", str(out), "--save", str(report_path),
            *_QUICK_PROFILE_PARAMS["arena"],
        ]
        assert main(argv) == 0
        report = json.loads(report_path.read_text(encoding="utf-8"))
        metadata = report["config"]["metadata"]
        distrib = metadata["distrib"]
        assert len(distrib["shard_timings"]) == 2
        assert distrib["timing"] == merge_summaries(distrib["shard_timings"])
        assert "session.execute" in metadata["timing"]

    def test_untraced_run_report_carries_no_timing_block(self):
        from repro.workloads import run_workload

        report = run_workload(
            "arena", solvers=("random",), suite="er-small", trials=1,
            samples=8, seed=0,
        )
        assert "timing" not in report.metadata
