"""Tests for the software Goemans-Williamson pipeline."""

import numpy as np
import pytest

from repro.algorithms.goemans_williamson import GW_APPROXIMATION_RATIO, goemans_williamson
from repro.cuts.exact import exact_maxcut_value
from repro.graphs.generators import complete_bipartite, complete_graph, cycle_graph, erdos_renyi
from repro.sdp.burer_monteiro import solve_maxcut_sdp
from repro.utils.validation import ValidationError


class TestGoemansWilliamson:
    def test_result_fields(self, small_er_graph):
        result = goemans_williamson(small_er_graph, n_samples=32, seed=0)
        assert result.sample_weights.shape == (32,)
        assert result.best_weight == pytest.approx(result.sample_weights.max())
        assert result.sdp.objective > 0

    def test_running_best_monotone(self, small_er_graph):
        result = goemans_williamson(small_er_graph, n_samples=64, seed=1)
        running = result.running_best()
        assert np.all(np.diff(running) >= 0)

    def test_best_cut_below_optimum(self, small_er_graph):
        result = goemans_williamson(small_er_graph, n_samples=128, seed=2)
        assert result.best_weight <= exact_maxcut_value(small_er_graph) + 1e-9

    def test_achieves_gw_guarantee_on_small_graphs(self):
        """best cut >= 0.878 * OPT holds comfortably with a few hundred samples."""
        for seed in (3, 4, 5):
            graph = erdos_renyi(18, 0.4, seed=seed)
            if graph.n_edges == 0:
                continue
            opt = exact_maxcut_value(graph)
            result = goemans_williamson(graph, n_samples=200, seed=seed)
            assert result.best_weight >= GW_APPROXIMATION_RATIO * opt - 1e-9

    def test_bipartite_exact(self, small_bipartite):
        result = goemans_williamson(small_bipartite, n_samples=64, seed=6)
        assert result.best_weight == small_bipartite.total_weight

    def test_odd_cycle(self, five_cycle):
        result = goemans_williamson(five_cycle, n_samples=100, seed=7)
        assert result.best_weight == 4.0

    def test_complete_graph(self):
        graph = complete_graph(8)
        result = goemans_williamson(graph, n_samples=200, seed=8)
        assert result.best_weight == 16.0  # floor(8/2)*ceil(8/2)

    def test_precomputed_sdp_used(self, small_er_graph):
        sdp = solve_maxcut_sdp(small_er_graph, rank=6, seed=9)
        result = goemans_williamson(small_er_graph, n_samples=16, seed=10, rank=6, sdp_result=sdp)
        assert result.sdp is sdp

    def test_requires_samples(self, triangle):
        with pytest.raises(ValidationError):
            goemans_williamson(triangle, n_samples=0)

    def test_rejects_empty_graph(self):
        from repro.graphs.graph import Graph

        with pytest.raises(ValidationError):
            goemans_williamson(Graph(0))

    def test_reproducible(self, small_er_graph):
        a = goemans_williamson(small_er_graph, n_samples=16, seed=11).sample_weights
        b = goemans_williamson(small_er_graph, n_samples=16, seed=11).sample_weights
        np.testing.assert_array_equal(a, b)

    def test_sdp_objective_upper_bounds_cuts(self, small_er_graph):
        result = goemans_williamson(small_er_graph, n_samples=64, seed=12)
        assert result.best_weight <= result.sdp.objective + 1e-6
