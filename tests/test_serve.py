"""Tests for the solve service: cache, protocol, batching, transports.

The load-bearing claims:

* the content-addressed cache is a bounded, thread-safe LRU with accurate
  hit/miss/eviction accounting (it also backs the workload executor);
* served responses are bit-identical to standalone engine runs with the
  same seed, *regardless of which batch the scheduler coalesced them into*;
* N concurrent same-shape requests cost at most ``ceil(N / per-batch
  capacity)`` engine invocations (the coalescing guarantee, ISSUE
  acceptance: >= 2x fewer than serial for 8 concurrent requests);
* the admission policy rejects with machine-readable reasons, and shutdown
  drains the queue while refusing new work.
"""

from __future__ import annotations

import json
import threading
import time

import numpy as np
import pytest

from repro.experiments.runner import run_circuit_trials
from repro.graphs.generators import erdos_renyi
from repro.graphs.graph import Graph
from repro.graphs.io import graph_from_dict, graph_to_dict
from repro.problems import problem_from_dict, random_problem
from repro.serve import (
    AdmissionError,
    ContentAddressedCache,
    ServeClient,
    ServeClientError,
    ServiceConfig,
    SolverService,
    content_key,
    parse_solve_payload,
    serve_http,
    serve_unix,
    solve_payload,
)
from repro.utils.validation import ValidationError


def _graph(seed=1, n=16):
    return erdos_renyi(n, 0.35, seed=seed)


def _payload(graph, **overrides):
    payload = {
        "graph": graph_to_dict(graph), "circuit": "lif_tr",
        "trials": 2, "samples": 8, "seed": 0,
    }
    payload.update(overrides)
    return payload


class TestContentAddressedCache:
    def test_lru_eviction_respects_size_bound(self):
        cache = ContentAddressedCache(max_entries=2, name="t")
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh: "b" is now the LRU entry
        cache.put("c", 3)
        assert len(cache) == 2
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.evictions == 1

    def test_stats_accounting(self):
        cache = ContentAddressedCache(max_entries=4, name="t")
        cache.put("k", "v")
        assert cache.get("k") == "v"
        assert cache.get("missing") is None
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
        assert stats["size"] == 1 and stats["max_entries"] == 4
        assert stats["name"] == "t"

    def test_get_or_build_builds_once_across_threads(self):
        cache = ContentAddressedCache(max_entries=4, name="t")
        builds = []
        barrier = threading.Barrier(4)

        def build():
            builds.append(1)
            return "built"

        def worker():
            barrier.wait()
            assert cache.get_or_build("k", build) == "built"

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(builds) == 1

    def test_invalidate_and_contains(self):
        cache = ContentAddressedCache(max_entries=2, name="t")
        cache.put("k", 1)
        assert "k" in cache
        assert cache.invalidate("k") is True
        assert cache.invalidate("k") is False
        assert "k" not in cache

    def test_max_entries_validation(self):
        for bad in (0, -1, True, 1.5):
            with pytest.raises(ValidationError):
                ContentAddressedCache(max_entries=bad)

    def test_content_key_is_order_sensitive_and_stable(self):
        assert content_key("a", 1) == content_key("a", 1)
        assert content_key("a", 1) != content_key(1, "a")


class TestFingerprints:
    def test_graph_fingerprint_ignores_name_not_structure(self):
        g1 = Graph(4, [(0, 1, 2.0), (1, 2, 1.0)], name="one")
        g2 = Graph(4, [(0, 1, 2.0), (1, 2, 1.0)], name="two")
        g3 = Graph(4, [(0, 1, 2.5), (1, 2, 1.0)], name="one")
        assert g1.fingerprint() == g2.fingerprint()
        assert g1.fingerprint() != g3.fingerprint()
        assert g1.fingerprint() != Graph(5, [(0, 1, 2.0), (1, 2, 1.0)]).fingerprint()

    def test_graph_dict_round_trip(self):
        g = _graph(seed=5)
        clone = graph_from_dict(graph_to_dict(g))
        assert clone.fingerprint() == g.fingerprint()
        assert clone.name == g.name
        with pytest.raises(ValidationError):
            graph_from_dict({"edges": []})
        with pytest.raises(ValidationError):
            graph_from_dict({"n_vertices": 3, "edges": "nope"})

    def test_problem_fingerprint_round_trips_through_json(self):
        problem = random_problem("qubo", seed=2, n_variables=6)
        clone = problem_from_dict(json.loads(json.dumps(problem.to_dict())))
        assert clone.fingerprint() == problem.fingerprint()


class TestProtocol:
    def test_parse_defaults(self):
        spec = parse_solve_payload({"graph": graph_to_dict(_graph())})
        assert spec.circuit == "lif_gw" and spec.backend == "auto"
        assert spec.n_trials == 8 and spec.n_samples == 64
        assert spec.seed == 0 and spec.problem is None

    def test_parse_rejections(self):
        graph = graph_to_dict(_graph())
        problem = random_problem("qubo", seed=1, n_variables=4).to_dict()
        for payload in (
            [],                                         # not an object
            {},                                         # neither graph nor problem
            {"graph": graph, "problem": problem},       # both
            {"graph": graph, "bogus": 1},               # unknown key
            {"graph": graph, "circuit": "warp"},        # unknown circuit
            {"graph": graph, "trials": 0},              # bad count
            {"graph": graph, "trials": True},           # bool is not an int
            {"graph": graph, "seed": -1},               # negative seed
            {"graph": graph, "timeout_seconds": 0},     # non-positive timeout
        ):
            with pytest.raises(ValidationError):
                parse_solve_payload(payload)

    def test_solve_payload_round_trip(self):
        g = _graph()
        payload = solve_payload(graph=g, circuit="lif_tr", trials=3, seed=9)
        spec = parse_solve_payload(payload)
        assert spec.circuit == "lif_tr" and spec.n_trials == 3 and spec.seed == 9
        with pytest.raises(ValidationError):
            solve_payload(graph=g, problem=random_problem("qubo", seed=1, n_variables=4))
        with pytest.raises(ValidationError):
            solve_payload(graph=g, bogus=1)

    def test_solver_key_aliases_circuit(self):
        graph = graph_to_dict(_graph())
        # "solver" is the client-friendly spelling of "circuit".
        spec = parse_solve_payload({"graph": graph, "solver": "lif_tr"})
        assert spec.circuit == "lif_tr"
        # Agreeing duplicates are tolerated; disagreeing ones are not.
        spec = parse_solve_payload(
            {"graph": graph, "solver": "lif_tr", "circuit": "lif_tr"}
        )
        assert spec.circuit == "lif_tr"
        with pytest.raises(ValidationError):
            parse_solve_payload(
                {"graph": graph, "solver": "lif_tr", "circuit": "lif_gw"}
            )
        with pytest.raises(ValidationError):
            parse_solve_payload({"graph": graph, "solver": "warp"})

    def test_auto_circuit_parses_to_sentinel(self):
        graph = graph_to_dict(_graph())
        for spelling in ("auto", "portfolio"):
            for key in ("solver", "circuit"):
                spec = parse_solve_payload({"graph": graph, key: spelling})
                assert spec.circuit == "auto"


class TestServiceIdentity:
    def test_served_lif_tr_matches_direct_engine_run(self):
        g = _graph(seed=3, n=18)
        with SolverService() as service:
            for seed in (0, 5):
                response = service.solve(
                    _payload(g, trials=3, samples=12, seed=seed), timeout=60
                )
                direct = run_circuit_trials(
                    graph=g, circuit="lif_tr", n_trials=3, n_samples=12, seed=seed
                )
                assert response["status"] == "ok"
                assert response["trial_best_weights"] == [
                    float(w) for w in direct.trial_best_weights
                ]
                assert response["best_weight"] == float(direct.best_cut.weight)
                assert response["assignment"] == [
                    int(v) for v in direct.best_cut.assignment
                ]

    def test_served_lif_gw_matches_setup_seeded_instance(self):
        from repro.circuits.lif_gw import LIFGWCircuit

        g = _graph(seed=4, n=14)
        with SolverService() as service:
            response = service.solve(
                _payload(g, circuit="lif_gw", trials=2, samples=10,
                         seed=6, setup_seed=2),
                timeout=60,
            )
        # The service's reference point: the circuit built from setup_seed
        # (the SDP stage), sampled with the request seed.
        circuit = LIFGWCircuit(g, seed=2)
        direct = run_circuit_trials(
            circuit=circuit, graph=None, n_trials=2, n_samples=10, seed=6
        )
        assert response["trial_best_weights"] == [
            float(w) for w in direct.trial_best_weights
        ]

    def test_problem_request_lifts_and_certifies(self):
        problem = random_problem("qubo", seed=7, n_variables=6)
        with SolverService() as service:
            response = service.solve(
                {"problem": problem.to_dict(), "trials": 3, "samples": 12, "seed": 1},
                timeout=60,
            )
        assert response["status"] == "ok"
        block = response["problem"]
        assert block["kind"] == "qubo" and block["certified"] is True
        solution = np.asarray(block["solution"])
        # The reported objective is the real native objective of the lifted
        # solution, and the affine certificate ties it to the cut weight.
        assert block["objective"] == pytest.approx(float(problem.objective(solution)))
        assert block["objective"] == pytest.approx(
            block["value_scale"] * response["best_weight"] + block["value_offset"]
        )


class TestCoalescingConcurrency:
    def test_eight_threads_at_most_ceil_n_over_cap_invocations(self):
        """Satellite 3: 8 concurrent same-shape requests, capacity 4 requests
        per batch -> at most 2 engine invocations, every response equal to
        its standalone solve."""
        g = _graph(seed=8, n=16)
        n_requests, trials = 8, 2
        # 4 requests of 2 trials fill one 8-trial batch.
        config = ServiceConfig(max_batch_trials=4 * trials)
        service = SolverService(config, autostart=False)
        jobs = [None] * n_requests
        barrier = threading.Barrier(n_requests)

        def post(index):
            barrier.wait()
            jobs[index] = service.submit(
                _payload(g, trials=trials, samples=10, seed=index)
            )

        threads = [
            threading.Thread(target=post, args=(i,)) for i in range(n_requests)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        service.start()
        responses = [job.wait(60) for job in jobs]
        service.shutdown()

        invocations = service.stats()["engine"]["invocations"]
        assert invocations <= 2  # == ceil(8 / 4)
        assert invocations < n_requests / 2  # ISSUE floor: >= 2x fewer than serial
        for seed, response in enumerate(responses):
            assert response["status"] == "ok"
            direct = run_circuit_trials(
                graph=g, circuit="lif_tr", n_trials=trials, n_samples=10, seed=seed
            )
            assert response["trial_best_weights"] == [
                float(w) for w in direct.trial_best_weights
            ]
        assert sum(r["coalesced"] for r in responses) == n_requests

    def test_result_cache_answers_repeats_without_engine(self):
        g = _graph(seed=9)
        with SolverService() as service:
            first = service.solve(_payload(g, seed=3), timeout=60)
            invocations = service.stats()["engine"]["invocations"]
            second = service.solve(_payload(g, seed=3), timeout=60)
            assert service.stats()["engine"]["invocations"] == invocations
        assert second["cached"] is True and first["cached"] is False
        assert second["trial_best_weights"] == first["trial_best_weights"]

    def test_different_shapes_do_not_coalesce(self):
        g = _graph(seed=10)
        service = SolverService(autostart=False)
        a = service.submit(_payload(g, samples=8, seed=0))
        b = service.submit(_payload(g, samples=16, seed=0))  # different shape
        service.start()
        ra, rb = a.wait(60), b.wait(60)
        service.shutdown()
        assert ra["status"] == rb["status"] == "ok"
        assert not ra["coalesced"] and not rb["coalesced"]
        assert service.stats()["engine"]["invocations"] == 2


class TestAdmission:
    def test_queue_depth_limit(self):
        g = _graph(seed=11)
        service = SolverService(
            ServiceConfig(max_queue_depth=2), autostart=False
        )
        service.submit(_payload(g, seed=0))
        service.submit(_payload(g, seed=1))
        with pytest.raises(AdmissionError) as excinfo:
            service.submit(_payload(g, seed=2))
        assert excinfo.value.reason == "queue_full"
        service.start()
        service.shutdown(drain=True)
        assert service.stats()["rejected"] == {"queue_full": 1}

    def test_budget_and_size_caps(self):
        g = _graph(seed=12)
        service = SolverService(
            ServiceConfig(max_trials_per_request=4, max_request_vertices=8),
            autostart=False,
        )
        with pytest.raises(AdmissionError) as excinfo:
            service.submit(_payload(g, trials=5))
        assert excinfo.value.reason == "budget"
        with pytest.raises(AdmissionError) as excinfo:
            service.submit(_payload(g, trials=2))
        assert excinfo.value.reason == "too_large"
        service.shutdown()

    def test_queue_timeout_expires_stale_jobs(self):
        g = _graph(seed=13)
        service = SolverService(autostart=False)
        job = service.submit(_payload(g, timeout_seconds=0.02))
        time.sleep(0.1)
        service.start()
        response = job.wait(30)
        service.shutdown()
        assert response["status"] == "error" and response["reason"] == "timeout"
        assert service.stats()["timed_out"] == 1

    def test_draining_service_refuses_admissions_but_finishes_queue(self):
        g = _graph(seed=14)
        service = SolverService(autostart=False)
        jobs = [service.submit(_payload(g, seed=s)) for s in range(3)]
        service.start()
        service.shutdown(drain=True)
        for job in jobs:
            assert job.wait(0)["status"] == "ok"  # drained, already complete
        with pytest.raises(AdmissionError) as excinfo:
            service.submit(_payload(g, seed=99))
        assert excinfo.value.reason == "draining"

    def test_engine_deadline_rides_solo_with_partial_result(self):
        g = _graph(seed=15)
        service = SolverService(autostart=False)
        capped = service.submit(_payload(g, samples=400, deadline_seconds=1e-4))
        plain = service.submit(_payload(g, samples=400, seed=5))
        service.start()
        rc, rp = capped.wait(60), plain.wait(60)
        service.shutdown()
        # The deadline job must not drag batch-mates into truncation.
        assert not rc["coalesced"] and not rp["coalesced"]
        assert rc["deadline_exceeded"] is True and rc["n_rounds"] < 400
        assert rp["deadline_exceeded"] is False and rp["n_rounds"] == 400


class TestTransports:
    def _run_server(self, server):
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        return thread

    def test_http_round_trip_and_stats(self):
        g = _graph(seed=16)
        with SolverService() as service:
            server = serve_http(service, port=0)
            self._run_server(server)
            try:
                client = ServeClient(port=server.server_address[1], timeout=60)
                response = client.solve_graph(
                    g, circuit="lif_tr", trials=2, samples=8, seed=1
                )
                direct = run_circuit_trials(
                    graph=g, circuit="lif_tr", n_trials=2, n_samples=8, seed=1
                )
                assert response["best_weight"] == float(direct.best_cut.weight)
                problem = random_problem("ising", seed=1, n_variables=5)
                presponse = client.solve_problem(problem, trials=2, samples=8)
                assert presponse["problem"]["certified"] is True
                stats = client.stats()
                assert stats["completed"] >= 2
                assert stats["latency"]["p95_seconds"] >= 0.0
                assert client.health()["status"] == "ok"
            finally:
                server.shutdown()
                server.server_close()

    def test_http_error_statuses(self):
        with SolverService() as service:
            server = serve_http(service, port=0)
            self._run_server(server)
            try:
                client = ServeClient(port=server.server_address[1], timeout=30)
                with pytest.raises(ServeClientError) as excinfo:
                    client.solve({"trials": 2})  # no graph/problem
                assert excinfo.value.status == 400
                with pytest.raises(ServeClientError) as excinfo:
                    client._request("GET", "/nope")
                assert excinfo.value.status == 404
            finally:
                server.shutdown()
                server.server_close()

    def test_unix_socket_round_trip(self, tmp_path):
        g = _graph(seed=17)
        path = str(tmp_path / "serve.sock")
        with SolverService() as service:
            server = serve_unix(service, path)
            self._run_server(server)
            try:
                client = ServeClient(socket_path=path, timeout=60)
                response = client.solve_graph(
                    g, circuit="lif_tr", trials=2, samples=8, seed=2
                )
                assert response["status"] == "ok"
            finally:
                server.shutdown()
                server.server_close()
        assert not (tmp_path / "serve.sock").exists()  # cleaned on close

    def test_client_requires_exactly_one_endpoint(self):
        with pytest.raises(ValidationError):
            ServeClient()
        with pytest.raises(ValidationError):
            ServeClient(port=1, socket_path="/tmp/x")


class TestStatsEdgeCases:
    """/stats percentile reporting at the empty and single-sample corners."""

    def test_percentile_of_no_samples_is_zero(self):
        assert SolverService._percentile([], 0.50) == 0.0
        assert SolverService._percentile([], 0.95) == 0.0
        stats = SolverService(autostart=False).stats()
        assert stats["latency"]["count"] == 0
        assert stats["latency"]["p50_seconds"] == 0.0
        assert stats["latency"]["p95_seconds"] == 0.0

    def test_percentile_of_one_sample_is_that_sample(self):
        assert SolverService._percentile([0.25], 0.50) == 0.25
        assert SolverService._percentile([0.25], 0.95) == 0.25
        with SolverService() as service:
            response = service.solve(
                _payload(_graph(seed=21), trials=1, samples=4, seed=0),
                timeout=60,
            )
            assert response["status"] == "ok"
            latency = service.stats()["latency"]
        assert latency["count"] == 1
        assert latency["p50_seconds"] == latency["p95_seconds"] >= 0.0


class TestBatchCapBoundaries:
    """max_batch_trials at its boundaries: exact fill, spill, over-cap solo."""

    def test_exact_fill_coalesces_into_one_batch(self):
        g = _graph(seed=22)
        service = SolverService(
            ServiceConfig(max_batch_trials=4), autostart=False
        )
        jobs = [service.submit(_payload(g, trials=2, samples=8, seed=s))
                for s in (0, 1)]
        service.start()
        responses = [job.wait(60) for job in jobs]
        service.shutdown()
        assert all(r["status"] == "ok" and r["coalesced"] for r in responses)
        assert service.stats()["engine"]["invocations"] == 1

    def test_one_trial_over_the_cap_spills_to_a_second_batch(self):
        g = _graph(seed=23)
        service = SolverService(
            ServiceConfig(max_batch_trials=4), autostart=False
        )
        jobs = [service.submit(_payload(g, trials=t, samples=8, seed=s))
                for s, t in enumerate((2, 2, 1))]
        service.start()
        responses = [job.wait(60) for job in jobs]
        service.shutdown()
        assert all(r["status"] == "ok" for r in responses)
        # 2 + 2 fills the cap exactly; the 1-trial job spills.
        assert service.stats()["engine"]["invocations"] == 2
        assert [r["coalesced"] for r in responses] == [True, True, False]

    def test_single_job_above_the_cap_rides_alone(self):
        g = _graph(seed=24)
        service = SolverService(
            ServiceConfig(max_batch_trials=2), autostart=False
        )
        job = service.submit(_payload(g, trials=3, samples=8, seed=0))
        service.start()
        response = job.wait(60)
        service.shutdown()
        # The cap bounds *coalescing*, not a single request: the job runs
        # whole in one engine invocation.
        assert response["status"] == "ok" and not response["coalesced"]
        assert response["n_trials"] == 3
        assert service.stats()["engine"]["invocations"] == 1
