"""Failure-injection tests: malformed inputs and degenerate graphs.

The library should fail loudly (ValidationError) on malformed input and keep
working (not crash, not return NaN) on degenerate-but-legal graphs such as
edgeless graphs, disconnected graphs, and graphs with isolated vertices.
"""

import numpy as np
import pytest

from repro.algorithms.goemans_williamson import goemans_williamson
from repro.algorithms.random_baseline import random_baseline
from repro.circuits.config import LIFGWConfig, LIFTrevisanConfig
from repro.circuits.lif_gw import LIFGWCircuit
from repro.circuits.lif_trevisan import LIFTrevisanCircuit
from repro.cuts.cut import cut_weight
from repro.graphs.graph import Graph
from repro.sdp.burer_monteiro import solve_maxcut_sdp
from repro.spectral.trevisan import trevisan_simple_spectral
from repro.utils.validation import ValidationError

FAST_GW = LIFGWConfig(burn_in_steps=10, sample_interval=2, sdp_max_iterations=100)
FAST_TR = LIFTrevisanConfig(burn_in_steps=10, sample_interval=2)


@pytest.fixture
def disconnected_graph():
    """Two components plus two isolated vertices."""
    return Graph(10, [(0, 1), (1, 2), (2, 0), (4, 5), (5, 6)], name="disconnected")


@pytest.fixture
def star_with_isolated():
    return Graph(6, [(0, 1), (0, 2), (0, 3)], name="star_plus_isolated")


class TestDegenerateGraphs:
    def test_edgeless_graph_through_sdp(self, empty_graph):
        result = solve_maxcut_sdp(empty_graph, rank=3)
        assert result.objective == 0.0

    def test_edgeless_graph_through_trevisan(self, empty_graph):
        cut = trevisan_simple_spectral(empty_graph).cut
        assert cut.weight == 0.0

    def test_edgeless_graph_through_circuits(self, empty_graph):
        gw = LIFGWCircuit(empty_graph, config=FAST_GW, seed=0).sample_cuts(8, seed=1)
        tr = LIFTrevisanCircuit(empty_graph, config=FAST_TR).sample_cuts(8, seed=2)
        assert gw.best_weight == 0.0
        assert tr.best_weight == 0.0

    def test_edgeless_graph_through_random(self, empty_graph):
        best, weights = random_baseline(empty_graph, 8, seed=3)
        assert best.weight == 0.0
        assert np.all(weights == 0.0)

    def test_disconnected_graph_circuits_run(self, disconnected_graph):
        gw = LIFGWCircuit(disconnected_graph, config=FAST_GW, seed=4).sample_cuts(32, seed=5)
        tr = LIFTrevisanCircuit(disconnected_graph, config=FAST_TR).sample_cuts(32, seed=6)
        assert np.isfinite(gw.best_weight)
        assert np.isfinite(tr.best_weight)
        assert gw.best_weight <= disconnected_graph.total_weight

    def test_isolated_vertices_do_not_produce_nan(self, star_with_isolated):
        # isolated vertices have zero degree: D^{-1/2} handling must stay finite
        T = star_with_isolated.trevisan_matrix()
        assert np.all(np.isfinite(T))
        cut = trevisan_simple_spectral(star_with_isolated).cut
        assert np.isfinite(cut.weight)
        result = LIFTrevisanCircuit(star_with_isolated, config=FAST_TR).sample_cuts(16, seed=7)
        assert np.isfinite(result.best_weight)

    def test_single_vertex_graph(self):
        g = Graph(1, [], name="single")
        gw = LIFGWCircuit(g, config=FAST_GW, seed=8).sample_cuts(4, seed=9)
        assert gw.best_weight == 0.0

    def test_two_vertex_graph(self):
        g = Graph(2, [(0, 1)], name="edge")
        result = goemans_williamson(g, n_samples=32, seed=10)
        assert result.best_weight == 1.0

    def test_heavily_weighted_edges(self):
        g = Graph(4, [(0, 1, 1e6), (2, 3, 1e-6), (0, 2, 1.0)], name="extreme_weights")
        result = goemans_williamson(g, n_samples=64, seed=11)
        assert result.best_weight >= 1e6  # the heavy edge must be cut


class TestMalformedInputs:
    def test_graph_rejects_nan_weight(self):
        with pytest.raises(ValidationError):
            Graph(2, [(0, 1, float("nan"))])

    def test_graph_rejects_inf_weight(self):
        with pytest.raises(ValidationError):
            Graph(2, [(0, 1, float("inf"))])

    def test_cut_weight_rejects_wrong_length(self, triangle):
        with pytest.raises(ValidationError):
            cut_weight(triangle, np.ones(7, dtype=int))

    def test_circuit_rejects_zero_samples(self, small_er_graph):
        with pytest.raises(ValidationError):
            LIFGWCircuit(small_er_graph, config=FAST_GW, seed=12).sample_cuts(0)

    def test_circuit_rejects_empty_graph(self):
        with pytest.raises(ValidationError):
            LIFGWCircuit(Graph(0))
        with pytest.raises(ValidationError):
            LIFTrevisanCircuit(Graph(0))

    def test_sdp_rejects_bad_rank(self, small_er_graph):
        with pytest.raises(ValidationError):
            solve_maxcut_sdp(small_er_graph, rank=-2)

    def test_config_rejects_nonsense(self):
        with pytest.raises(ValidationError):
            LIFGWConfig(sample_interval=-1)
        with pytest.raises(ValidationError):
            LIFTrevisanConfig(learning_rate=-0.1)
