"""Tests for the parallel execution harness."""

import os

import numpy as np
import pytest

from repro.parallel.partition import balance_by_cost, chunk_indices, partition_work
from repro.parallel.pool import ParallelConfig, parallel_map
from repro.parallel.seeds import SeededTask, seeded_tasks
from repro.utils.validation import ValidationError


def _square(x):
    return x * x


def _seeded_draw(task):
    return float(task.generator().random())


class TestParallelConfig:
    def test_defaults(self):
        config = ParallelConfig()
        assert config.resolved_workers() >= 1

    def test_explicit_workers(self):
        assert ParallelConfig(n_workers=3).resolved_workers() == 3

    def test_zero_workers_means_serial(self):
        assert ParallelConfig(n_workers=0).resolved_workers() == 0

    def test_invalid_chunk_size(self):
        with pytest.raises(ValidationError):
            ParallelConfig(chunk_size=0)

    def test_invalid_workers(self):
        with pytest.raises(ValidationError):
            ParallelConfig(n_workers=-1)


class TestParallelMap:
    def test_serial_path(self):
        out = parallel_map(_square, [1, 2, 3], ParallelConfig(n_workers=1))
        assert out == [1, 4, 9]

    def test_serial_preserves_order(self):
        out = parallel_map(_square, range(10), ParallelConfig(n_workers=0))
        assert out == [i * i for i in range(10)]

    def test_process_path_matches_serial(self):
        items = list(range(12))
        serial = parallel_map(_square, items, ParallelConfig(n_workers=1))
        parallel = parallel_map(_square, items, ParallelConfig(n_workers=2, serial_threshold=0))
        assert serial == parallel

    def test_small_lists_run_serially_even_with_workers(self):
        # serial_threshold larger than the item count forces the serial path;
        # lambdas are not picklable, so this only works if it is indeed serial.
        out = parallel_map(lambda x: x + 1, [1], ParallelConfig(n_workers=4, serial_threshold=10))
        assert out == [2]

    def test_exceptions_propagate(self):
        def boom(x):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            parallel_map(boom, [1, 2], ParallelConfig(n_workers=1))

    def test_empty_items(self):
        assert parallel_map(_square, [], ParallelConfig(n_workers=2)) == []


class TestPartitioning:
    def test_chunk_indices(self):
        assert chunk_indices(10, 4) == [(0, 4), (4, 8), (8, 10)]

    def test_chunk_indices_exact(self):
        assert chunk_indices(8, 4) == [(0, 4), (4, 8)]

    def test_chunk_indices_zero_items(self):
        assert chunk_indices(0, 4) == []

    def test_chunk_invalid(self):
        with pytest.raises(ValidationError):
            chunk_indices(5, 0)
        with pytest.raises(ValidationError):
            chunk_indices(-1, 2)

    def test_partition_work_sizes(self):
        parts = partition_work(10, 3)
        sizes = [stop - start for start, stop in parts]
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1
        assert len(parts) == 3

    def test_partition_more_bins_than_items(self):
        parts = partition_work(2, 5)
        assert len(parts) == 5
        assert sum(stop - start for start, stop in parts) == 2

    def test_partition_contiguous(self):
        parts = partition_work(17, 4)
        for (s1, e1), (s2, _e2) in zip(parts, parts[1:]):
            assert e1 == s2

    def test_partition_invalid(self):
        with pytest.raises(ValidationError):
            partition_work(5, 0)

    def test_balance_by_cost_covers_all_items(self):
        costs = [5.0, 1.0, 3.0, 2.0, 4.0]
        bins = balance_by_cost(costs, 2)
        assigned = sorted(i for b in bins for i in b)
        assert assigned == list(range(5))

    def test_balance_by_cost_reasonable_makespan(self):
        costs = [8.0, 7.0, 6.0, 5.0, 4.0, 3.0]
        bins = balance_by_cost(costs, 2)
        loads = [sum(costs[i] for i in b) for b in bins]
        # LPT guarantee: within 4/3 of optimal (16.5)
        assert max(loads) <= 4.0 / 3.0 * 16.5 + 1e-9

    def test_balance_invalid(self):
        with pytest.raises(ValidationError):
            balance_by_cost([1.0], 0)
        with pytest.raises(ValidationError):
            balance_by_cost([-1.0], 2)
        with pytest.raises(ValidationError):
            balance_by_cost(np.ones((2, 2)), 2)


class TestSeededTasks:
    def test_task_count_and_payloads(self):
        tasks = seeded_tasks(["a", "b", "c"], root_seed=1)
        assert [t.payload for t in tasks] == ["a", "b", "c"]
        assert [t.index for t in tasks] == [0, 1, 2]

    def test_deterministic_per_index(self):
        a = seeded_tasks([0, 1, 2], root_seed=7)
        b = seeded_tasks([0, 1, 2], root_seed=7)
        for ta, tb in zip(a, b):
            assert ta.generator().random() == tb.generator().random()

    def test_indices_independent(self):
        tasks = seeded_tasks([0, 1], root_seed=7)
        assert tasks[0].generator().random() != tasks[1].generator().random()

    def test_results_identical_serial_vs_process(self):
        tasks = seeded_tasks(list(range(8)), root_seed=3)
        serial = parallel_map(_seeded_draw, tasks, ParallelConfig(n_workers=1))
        multi = parallel_map(_seeded_draw, tasks, ParallelConfig(n_workers=2, serial_threshold=0))
        assert serial == multi

    def test_tasks_picklable(self):
        import pickle

        task = seeded_tasks([42], root_seed=5)[0]
        clone = pickle.loads(pickle.dumps(task))
        assert clone.generator().random() == task.generator().random()
