"""Tests for the evolving workload, scale suites, and the no-densify guard."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.arena.suite import build_suite, list_suites
from repro.graphs.graph import Graph
from repro.utils.validation import ValidationError
from repro.workloads import list_workloads, run_workload


@pytest.fixture
def dense_guard(monkeypatch):
    """Make every dense (n, n) materialisation on Graph raise."""

    def _boom(self, *args, **kwargs):
        raise AssertionError(
            f"dense matrix materialised for n={self.n_vertices}"
        )

    for method in ("adjacency", "normalized_adjacency", "trevisan_matrix",
                   "laplacian"):
        monkeypatch.setattr(Graph, method, _boom)
    return _boom


class TestScaleSuites:
    def test_suites_registered(self):
        assert "scale-small" in list_suites()
        assert "scale-large" in list_suites()

    def test_scale_small_builds_deterministically(self):
        a = build_suite("scale-small", seed=3)
        b = build_suite("scale-small", seed=3)
        assert [g.fingerprint() for g in a] == [g.fingerprint() for g in b]
        assert len({g.name for g in a}) == len(a)
        assert all(g._adjacency is None for g in a)


class TestEvolvingWorkload:
    def test_registered(self):
        assert "evolving" in list_workloads()

    def test_runs_on_er_small(self):
        report = run_workload(
            "evolving", suite="er-small", trials=1, samples=64, seed=0
        )
        # 3 graphs x (1 initial + 3 steps) records.
        assert len(report.records) == 12
        steps = [r.step for r in report.records]
        assert steps.count(0) == 3
        for record in report.records:
            assert record.warm_weight > 0
            if record.step == 0:
                assert record.warm_weight == record.cold_weight
                assert not record.compared
            else:
                assert record.compared
                assert record.quality_ratio == pytest.approx(
                    record.warm_weight / record.cold_weight
                )
        assert {row["metric"] for row in report.leaderboard} == {
            "warm/cold cut ratio"
        }

    def test_deterministic_in_seed(self):
        a = run_workload("evolving", suite="er-small", trials=1, samples=32,
                         seed=5)
        b = run_workload("evolving", suite="er-small", trials=1, samples=32,
                         seed=5)
        assert [r.fingerprint for r in a.records] == [
            r.fingerprint for r in b.records
        ]
        assert [r.warm_weight for r in a.records] == [
            r.warm_weight for r in b.records
        ]

    def test_fingerprints_chain_across_steps(self):
        report = run_workload("evolving", suite="er-small", trials=1,
                              samples=16, seed=1)
        by_graph = {}
        for record in report.records:
            by_graph.setdefault(record.graph_name, []).append(record)
        for rows in by_graph.values():
            rows.sort(key=lambda r: r.step)
            for previous, current in zip(rows, rows[1:]):
                assert current.detail["parent_fingerprint"] == previous.fingerprint

    def test_compare_cold_off_skips_reference(self):
        report = run_workload("evolving", suite="er-small", trials=1,
                              samples=16, seed=0, compare_cold=False)
        assert all(not r.compared for r in report.records)
        assert all(r.quality_ratio == 1.0 for r in report.records)

    def test_rejects_negative_steps(self):
        with pytest.raises(ValidationError):
            run_workload("evolving", suite="er-small", steps=-1, seed=0)


class TestEvolvingSharded:
    def test_sharded_cli_matches_monolithic(self, tmp_path, capsys):
        from repro.cli import main

        out_mono = tmp_path / "mono.json"
        out_merged = tmp_path / "merged.json"
        ckpt = tmp_path / "ckpt"
        base = [
            "run", "evolving", "--param", "suite=er-small",
            "--param", "trials=1", "--param", "samples=32", "--seed", "3",
        ]
        assert main(base + ["--save", str(out_mono)]) == 0
        assert main(base + ["--shards", "2", "--checkpoint-dir", str(ckpt)]) == 0
        assert main(["merge", str(ckpt), "--save", str(out_merged)]) == 0
        capsys.readouterr()
        mono = json.loads(out_mono.read_text())
        merged = json.loads(out_merged.read_text())

        def strip_timing(rows):
            return [
                {k: v for k, v in row.items()
                 if not k.endswith("_seconds")}
                for row in rows
            ]

        assert strip_timing(mono["results"]) == strip_timing(merged["results"])
        assert mono["config"]["leaderboard"] == merged["config"]["leaderboard"]


class TestNoDensifyGuard:
    def test_auto_path_never_densifies_mid_size_graph(self, dense_guard):
        from repro.scale.generators import scale_barabasi_albert
        from repro.scale.stream import EdgeStream, GraphVersion, warm_resolve
        from repro.spectral.trevisan import minimum_eigenvector

        graph = scale_barabasi_albert(5000, 3, seed=0)
        value, vector = minimum_eigenvector(graph, method="auto")
        assert vector.shape == (5000,)
        # Full evolving pipeline under the guard: cold solve, delta batch,
        # warm re-solve.
        cold = warm_resolve(graph, method="auto", seed=0, max_flips=32)
        stream = EdgeStream.random(graph, 1, 8, seed=1)
        version = GraphVersion.initial(graph).apply(stream.step(0))
        warm = warm_resolve(version.graph, previous=cold, max_flips=32)
        assert warm.weight > 0

    def test_explicit_dense_raises_above_cap(self):
        from repro.scale.generators import scale_barabasi_albert
        from repro.spectral.trevisan import minimum_eigenvector

        graph = scale_barabasi_albert(5000, 2, seed=0)
        with pytest.raises(ValidationError, match="dense"):
            minimum_eigenvector(graph, method="dense")

    def test_arpack_zero_edge_fallback_stays_sparse(self, dense_guard):
        from repro.spectral.trevisan import minimum_eigenvector

        value, vector = minimum_eigenvector(Graph(500), method="arpack")
        assert value == 0.0
        assert vector[0] == 1.0 and vector.sum() == 1.0


class TestServeAdmission:
    def test_service_rejects_oversized_scale_graph(self):
        from repro.graphs.io import graph_to_dict
        from repro.scale.generators import scale_barabasi_albert
        from repro.serve import AdmissionError, SolverService

        graph = scale_barabasi_albert(5000, 2, seed=0)
        service = SolverService(autostart=False)
        with pytest.raises(AdmissionError) as excinfo:
            service.submit({
                "graph": graph_to_dict(graph), "circuit": "lif_tr",
                "trials": 1, "samples": 8, "seed": 0,
            })
        assert excinfo.value.reason == "too_large"
        service.shutdown()


class TestPortfolioSizeBands:
    def test_new_bands_distinguish_scale_instances(self):
        from repro.portfolio.features import bucket_key

        # Two instances that previously collapsed into "large" now land in
        # distinct upper bands.
        assert bucket_key("maxcut", 5_000, 0.01) != bucket_key(
            "maxcut", 50_000, 0.01
        )
        assert bucket_key("maxcut", 50_000, 0.01) != bucket_key(
            "maxcut", 500_000, 0.01
        )
        assert bucket_key("maxcut", 5_000_000, 0.01).split("/")[1] == "huge"
        # The pinned pre-existing behaviour is preserved.
        assert bucket_key("qubo", 1024, 0.9) == "qubo/large/dense"
        assert bucket_key("maxcut", 64, 0.05) == "maxcut/small/sparse"
