"""Tests for the LIF-Goemans-Williamson circuit."""

import numpy as np
import pytest

from repro.circuits.config import LIFGWConfig
from repro.circuits.lif_gw import LIFGWCircuit
from repro.cuts.cut import cut_weight
from repro.cuts.exact import exact_maxcut_value
from repro.cuts.random_cut import random_cuts_batch
from repro.devices.bernoulli import BiasedCoinPool, FairCoinPool
from repro.graphs.generators import complete_bipartite, erdos_renyi
from repro.graphs.graph import Graph
from repro.sdp.burer_monteiro import solve_maxcut_sdp
from repro.utils.validation import ValidationError


class TestConstruction:
    def test_solves_sdp_if_not_given(self, small_er_graph):
        circuit = LIFGWCircuit(small_er_graph, seed=0)
        assert circuit.sdp_result.vectors.shape == (small_er_graph.n_vertices, 4)

    def test_accepts_precomputed_sdp(self, small_er_graph):
        sdp = solve_maxcut_sdp(small_er_graph, rank=4, seed=1)
        circuit = LIFGWCircuit(small_er_graph, sdp_result=sdp)
        assert circuit.sdp_result is sdp

    def test_rejects_mismatched_sdp(self, small_er_graph, triangle):
        sdp = solve_maxcut_sdp(triangle, rank=4, seed=1)
        with pytest.raises(ValidationError):
            LIFGWCircuit(small_er_graph, sdp_result=sdp)

    def test_rejects_empty_graph(self):
        with pytest.raises(ValidationError):
            LIFGWCircuit(Graph(0))

    def test_weights_scaled(self, small_er_graph):
        config = LIFGWConfig(weight_scale=3.0)
        circuit = LIFGWCircuit(small_er_graph, config=config, seed=2)
        np.testing.assert_allclose(circuit.weights, 3.0 * circuit.sdp_result.vectors)

    def test_device_pool_has_rank_devices(self, small_er_graph):
        circuit = LIFGWCircuit(small_er_graph, seed=3)
        pool = circuit.build_device_pool(0)
        assert pool.n_devices == 4

    def test_bad_device_pool_factory_rejected(self, small_er_graph):
        factory = lambda n, rng: FairCoinPool(n + 1, seed=rng)  # noqa: E731
        circuit = LIFGWCircuit(small_er_graph, device_pool_factory=factory, seed=4)
        with pytest.raises(ValidationError):
            circuit.build_device_pool(0)


class TestSampling:
    def test_result_shapes(self, small_er_graph):
        circuit = LIFGWCircuit(small_er_graph, seed=5)
        result = circuit.sample_cuts(64, seed=6)
        assert result.n_samples == 64
        assert result.trajectory.weights.shape == (64,)
        assert result.best_cut.n_vertices == small_er_graph.n_vertices

    def test_best_cut_weight_consistent(self, small_er_graph):
        circuit = LIFGWCircuit(small_er_graph, seed=7)
        result = circuit.sample_cuts(32, seed=8)
        assert result.best_weight == pytest.approx(
            cut_weight(small_er_graph, result.best_cut.assignment)
        )
        assert result.best_weight == pytest.approx(result.trajectory.weights.max())

    def test_requires_positive_samples(self, small_er_graph):
        circuit = LIFGWCircuit(small_er_graph, seed=9)
        with pytest.raises(ValidationError):
            circuit.sample_cuts(0)

    def test_reproducible(self, small_er_graph):
        circuit = LIFGWCircuit(small_er_graph, seed=10)
        a = circuit.sample_cuts(16, seed=11).trajectory.weights
        b = circuit.sample_cuts(16, seed=11).trajectory.weights
        np.testing.assert_array_equal(a, b)

    def test_metadata(self, small_er_graph):
        circuit = LIFGWCircuit(small_er_graph, seed=12)
        result = circuit.sample_cuts(8, seed=13)
        assert result.metadata["rank"] == 4
        assert result.metadata["n_devices"] == 4
        assert "sdp_objective" in result.metadata

    def test_spike_readout_runs(self, small_er_graph):
        config = LIFGWConfig(readout="spike")
        circuit = LIFGWCircuit(small_er_graph, config=config, seed=14)
        result = circuit.sample_cuts(32, seed=15)
        assert result.n_samples == 32
        assert result.metadata["readout"] == "spike"

    def test_solve_returns_best_cut(self, small_er_graph):
        circuit = LIFGWCircuit(small_er_graph, seed=16)
        cut = circuit.solve(32, seed=17)
        assert cut.weight <= exact_maxcut_value(small_er_graph) + 1e-9


class TestSolutionQuality:
    def test_matches_software_solver_quality(self):
        """LIF-GW should track the software GW solver (paper Figure 3 headline)."""
        graph = erdos_renyi(24, 0.4, seed=20)
        opt = exact_maxcut_value(graph)
        circuit = LIFGWCircuit(graph, seed=21)
        result = circuit.sample_cuts(600, seed=22)
        assert result.best_weight >= 0.9 * opt

    def test_beats_mean_random_cut(self, medium_er_graph):
        circuit = LIFGWCircuit(medium_er_graph, seed=23)
        result = circuit.sample_cuts(300, seed=24)
        _, random_weights = random_cuts_batch(medium_er_graph, 300, seed=25)
        assert result.best_weight > random_weights.mean()

    def test_bipartite_graph_near_optimal(self):
        graph = complete_bipartite(6, 6)
        circuit = LIFGWCircuit(graph, seed=26)
        result = circuit.sample_cuts(200, seed=27)
        assert result.best_weight >= 0.9 * graph.total_weight

    def test_weight_scale_invariance(self, small_er_graph):
        """The paper: only weight ratios matter, not magnitudes."""
        sdp = solve_maxcut_sdp(small_er_graph, rank=4, seed=28)
        a = LIFGWCircuit(small_er_graph, config=LIFGWConfig(weight_scale=1.0), sdp_result=sdp)
        b = LIFGWCircuit(small_er_graph, config=LIFGWConfig(weight_scale=50.0), sdp_result=sdp)
        ra = a.sample_cuts(400, seed=29)
        rb = b.sample_cuts(400, seed=29)
        # identical seeds and scaled weights give identical membrane-sign cuts
        np.testing.assert_array_equal(ra.trajectory.weights, rb.trajectory.weights)

    def test_biased_devices_still_work_reasonably(self, medium_er_graph):
        """Mild device bias should not destroy the circuit (Discussion robustness claim)."""
        factory = lambda n, rng: BiasedCoinPool(0.6, n_devices=n, seed=rng)  # noqa: E731
        fair = LIFGWCircuit(medium_er_graph, seed=30).sample_cuts(300, seed=31).best_weight
        biased = LIFGWCircuit(
            medium_er_graph, device_pool_factory=factory, seed=30
        ).sample_cuts(300, seed=31).best_weight
        assert biased >= 0.85 * fair
