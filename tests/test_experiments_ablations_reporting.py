"""Tests for the ablation studies and report formatting."""

import numpy as np
import pytest

from repro.experiments.ablations import (
    DEVICE_MODELS,
    run_device_imperfection_ablation,
    run_learning_rate_ablation,
    run_rank_ablation,
)
from repro.experiments.config import AblationConfig
from repro.experiments.reporting import (
    curves_to_rows,
    format_figure3_report,
    format_figure4_report,
    format_table,
    format_table1_report,
)
from repro.experiments.table1 import Table1Row
from repro.utils.validation import ValidationError

FAST_ABLATION = AblationConfig(n_vertices=20, edge_probability=0.3, n_graphs=2, n_samples=48, seed=0)


class TestDeviceImperfectionAblation:
    def test_runs_for_subset_of_models(self):
        models = {k: DEVICE_MODELS[k] for k in ("fair", "biased_0.6")}
        points = run_device_imperfection_ablation(
            config=FAST_ABLATION, circuit="lif_gw", device_models=models
        )
        assert [p.setting for p in points] == ["fair", "biased_0.6"]
        for p in points:
            assert p.per_graph.shape == (2,)
            assert 0 < p.mean_relative_cut < 1.5

    def test_lif_tr_variant(self):
        models = {"fair": DEVICE_MODELS["fair"]}
        points = run_device_imperfection_ablation(
            config=FAST_ABLATION, circuit="lif_tr", device_models=models
        )
        assert points[0].metadata["circuit"] == "lif_tr"

    def test_invalid_circuit(self):
        with pytest.raises(ValueError):
            run_device_imperfection_ablation(config=FAST_ABLATION, circuit="lif_xyz")

    def test_default_model_registry_complete(self):
        assert "fair" in DEVICE_MODELS
        assert any(k.startswith("biased") for k in DEVICE_MODELS)
        assert any(k.startswith("correlated") for k in DEVICE_MODELS)


class TestRankAblation:
    def test_rank_sweep(self):
        points = run_rank_ablation(config=FAST_ABLATION, ranks=(2, 4))
        assert [p.metadata["rank"] for p in points] == [2, 4]
        for p in points:
            assert p.mean_relative_cut > 0.5


class TestLearningRateAblation:
    def test_learning_rate_sweep(self):
        points = run_learning_rate_ablation(config=FAST_ABLATION, learning_rates=(0.005, 0.05))
        assert len(points) == 2
        for p in points:
            assert p.mean_relative_cut > 0.3
            assert "learning_rate" in p.metadata


class TestFormatTable:
    def test_basic(self):
        text = format_table(["a", "b"], [[1, 2.5], ["x", 3.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "b" in lines[0]
        assert "2.500" in lines[2]

    def test_row_length_mismatch(self):
        with pytest.raises(ValidationError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows(self):
        text = format_table(["col"], [])
        assert "col" in text

    def test_curves_to_rows(self):
        rows = curves_to_rows(np.array([1, 10]), {"m1": np.array([0.5, 0.9])})
        assert rows == [[1, 0.5], [10, 0.9]]


class TestReportFormatting:
    def test_table1_report(self):
        row = Table1Row(
            graph_name="toy", n_vertices=5, n_edges=6,
            measured={"lif_gw": 5.0, "lif_tr": 4.0, "solver": 5.0, "random": 3.0},
            paper={"lif_gw": 5, "lif_tr": 5, "solver": 5, "random": 4, "reference": 5},
            is_surrogate=True,
        )
        report = format_table1_report([row])
        assert "toy" in report
        assert "yes" in report

    def test_figure_reports_contain_titles(self):
        from repro.circuits.config import LIFGWConfig, LIFTrevisanConfig
        from repro.experiments.config import Figure3Config, Figure4Config
        from repro.experiments.figure3 import run_figure3_cell
        from repro.experiments.figure4 import run_figure4_panel
        from repro.graphs.generators import erdos_renyi
        from repro.parallel.pool import ParallelConfig

        fast_gw = LIFGWConfig(burn_in_steps=10, sample_interval=2, sdp_max_iterations=200)
        fast_tr = LIFTrevisanConfig(burn_in_steps=10, sample_interval=2)
        cell = run_figure3_cell(
            12, 0.4,
            config=Figure3Config(
                sizes=(12,), probabilities=(0.4,), n_graphs_per_cell=1,
                n_samples=16, n_solver_samples=8, seed=0, lif_gw=fast_gw, lif_tr=fast_tr,
            ),
            parallel=ParallelConfig(n_workers=1),
        )
        report3 = format_figure3_report([cell])
        assert "G(n=12" in report3

        panel = run_figure4_panel(
            erdos_renyi(12, 0.4, seed=1, name="tiny"),
            config=Figure4Config(
                n_samples=16, n_solver_samples=8, seed=1, lif_gw=fast_gw, lif_tr=fast_tr
            ),
        )
        report4 = format_figure4_report([panel])
        assert "tiny" in report4
