"""Daemon lifecycle test: real ``repro serve`` subprocess, SIGTERM drain.

The CI serve-smoke step runs this same sequence: boot the daemon on an
ephemeral port, post a graph request and a QUBO request over plain HTTP,
assert both come back certified-correct, then SIGTERM and require a clean
drained exit.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import urllib.request

import pytest


def _post(port: int, payload: dict, timeout: float = 60.0) -> dict:
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}/solve",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.load(response)


@pytest.fixture
def daemon():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
    )
    try:
        banner = process.stdout.readline().strip()
        assert banner.startswith("serving on http://"), banner
        yield process, int(banner.rsplit(":", 1)[1])
    finally:
        if process.poll() is None:
            process.kill()
            process.communicate(timeout=30)


def test_daemon_serves_graph_and_qubo_then_drains_on_sigterm(daemon):
    process, port = daemon

    ring = {"n_vertices": 6, "edges": [[i, (i + 1) % 6, 1.0] for i in range(6)]}
    graph_response = _post(port, {
        "graph": ring, "circuit": "lif_tr", "trials": 4, "samples": 32, "seed": 1,
    })
    assert graph_response["status"] == "ok"
    # C6 is bipartite: the full 6.0 cut is reliably found at this budget.
    assert graph_response["best_weight"] == 6.0

    qubo = {"kind": "qubo", "matrix": [
        [-1.0, 2.0, 0.0], [2.0, -1.0, 2.0], [0.0, 2.0, -1.0],
    ]}
    qubo_response = _post(port, {
        "problem": qubo, "trials": 4, "samples": 32, "seed": 2,
    })
    assert qubo_response["status"] == "ok"
    assert qubo_response["problem"]["certified"] is True
    assert qubo_response["problem"]["kind"] == "qubo"

    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}/stats", timeout=10
    ) as response:
        stats = json.load(response)
    assert stats["completed"] >= 2
    assert stats["queue_depth"] == 0

    process.send_signal(signal.SIGTERM)
    out, _ = process.communicate(timeout=60)
    assert process.returncode == 0, out
    assert "drained:" in out
