"""Slow acceptance test: the 100k-vertex pipeline, end to end, never dense.

Generates a 100k-vertex Barabási–Albert graph, solves it through the
sketched Trevisan path, and runs an evolving-graph timeline on it — all
with every dense ``(n, n)`` materialisation on :class:`Graph` patched to
raise.  Nightly CI runs this under ``-m slow``.
"""

from __future__ import annotations

import pytest

from repro.graphs.graph import Graph

pytestmark = pytest.mark.slow


@pytest.fixture
def dense_guard(monkeypatch):
    def _boom(self, *args, **kwargs):
        raise AssertionError(
            f"dense matrix materialised for n={self.n_vertices}"
        )

    for method in ("adjacency", "normalized_adjacency", "trevisan_matrix",
                   "laplacian"):
        monkeypatch.setattr(Graph, method, _boom)


class TestHundredKVertexPipeline:
    def test_generate_sketch_solve_and_evolve(self, dense_guard):
        from repro.scale.generators import scale_barabasi_albert
        from repro.scale.stream import EdgeStream, GraphVersion, warm_resolve
        from repro.spectral.trevisan import (
            SKETCH_AUTO_MIN_VERTICES,
            minimum_eigenvector,
            trevisan_sweep_cut,
        )

        n = 100_000
        assert n > SKETCH_AUTO_MIN_VERTICES  # auto must route to the sketch
        graph = scale_barabasi_albert(n, 3, seed=0)
        assert graph.n_vertices == n
        assert graph.n_edges > 0.95 * 3 * n

        # Explicit sketch and the auto route agree (auto dispatches to sketch
        # at this size, same seed, same test matrix).
        value_sketch, vector = minimum_eigenvector(graph, method="sketch", seed=1)
        value_auto, _ = minimum_eigenvector(graph, method="auto", seed=1)
        assert value_auto == value_sketch
        assert vector.shape == (n,)
        assert value_sketch < 0  # a BA graph's normalized spectrum dips below 0

        result = trevisan_sweep_cut(graph, method="sketch", seed=1)
        assert result.cut.assignment.shape == (n,)
        # A spectral cut must beat the random-split expectation (half the
        # total weight) by a clear margin on a sparse scale-free graph.
        assert result.cut.weight > 0.55 * float(graph.edge_weights.sum())

        # Evolving timeline on the same instance: delta, warm re-solve.
        stream = EdgeStream.random(graph, 2, 16, seed=2)
        version = GraphVersion.initial(graph)
        previous = result.cut
        for batch in stream:
            version = version.apply(batch)
            previous = warm_resolve(version.graph, previous=previous,
                                    max_flips=64)
        assert version.version == 2
        assert previous.weight >= 0.99 * result.cut.weight

    def test_scale_large_suite_builds_under_guard(self, dense_guard):
        from repro.arena.suite import build_suite

        graphs = build_suite("scale-large", seed=0)
        assert [g.n_vertices for g in graphs] == [100_000, 50_000, 65_536]
        assert all(g._adjacency is None for g in graphs)
