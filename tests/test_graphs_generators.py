"""Tests for repro.graphs.generators."""

import numpy as np
import pytest

from repro.graphs import generators as gen
from repro.graphs.generators import hamming_distance_graph
from repro.graphs.properties import degree_statistics, is_bipartite, is_connected
from repro.utils.validation import ValidationError


class TestErdosRenyi:
    def test_seed_reproducibility(self):
        a = gen.erdos_renyi(30, 0.3, seed=5)
        b = gen.erdos_renyi(30, 0.3, seed=5)
        assert a == b

    def test_p_zero_and_one(self):
        assert gen.erdos_renyi(10, 0.0, seed=1).n_edges == 0
        assert gen.erdos_renyi(10, 1.0, seed=1).n_edges == 45

    def test_edge_count_near_expectation(self):
        g = gen.erdos_renyi(200, 0.25, seed=3)
        expected = 0.25 * 200 * 199 / 2
        assert abs(g.n_edges - expected) < 0.15 * expected

    def test_invalid_probability(self):
        with pytest.raises(ValidationError):
            gen.erdos_renyi(10, 1.5)

    def test_zero_vertices(self):
        assert gen.erdos_renyi(0, 0.5).n_vertices == 0


class TestDeterministicFamilies:
    def test_complete_graph(self):
        g = gen.complete_graph(6)
        assert g.n_edges == 15

    def test_cycle_graph(self):
        g = gen.cycle_graph(7)
        assert g.n_edges == 7
        assert np.all(g.degrees() == 2)

    def test_cycle_too_small(self):
        with pytest.raises(ValidationError):
            gen.cycle_graph(2)

    def test_path_graph(self):
        g = gen.path_graph(5)
        assert g.n_edges == 4

    def test_star_graph(self):
        g = gen.star_graph(6)
        assert g.n_vertices == 7
        assert g.degrees()[0] == 6

    def test_complete_bipartite(self):
        g = gen.complete_bipartite(3, 4)
        assert g.n_edges == 12
        assert is_bipartite(g)

    def test_grid_graph(self):
        g = gen.grid_graph(3, 4)
        assert g.n_vertices == 12
        assert g.n_edges == 3 * 3 + 2 * 4  # vertical + horizontal: 2*(4-1)... verify count
        assert g.n_edges == 17

    def test_grid_graph_single_row(self):
        g = gen.grid_graph(1, 5)
        assert g.n_edges == 4


class TestHammingJohnson:
    def test_hamming_graph_h32(self):
        # H(3, 2): the 3-cube, 8 vertices of degree 3, 12 edges.
        g = gen.hamming_graph(3, 2)
        assert g.n_vertices == 8
        assert g.n_edges == 12
        assert np.all(g.degrees() == 3)

    def test_hamming_distance_graph_small(self):
        # d=2, min distance 2: complement of the 2-cube's unit-distance graph
        g = hamming_distance_graph(2, 2)
        assert g.n_vertices == 4
        # pairs at distance >= 2: only the two antipodal pairs (00-11, 01-10)
        assert g.n_edges == 2

    def test_hamming6_2_published_size(self):
        g = hamming_distance_graph(6, 2)
        assert g.n_vertices == 64
        assert g.n_edges == 1824  # published DIMACS size

    def test_johnson16_2_4_published_size(self):
        g = gen.johnson_graph(16, 2, 4)
        assert g.n_vertices == 120
        assert g.n_edges == 5460  # published DIMACS size

    def test_johnson_small(self):
        # 2-subsets of a 4-set: 6 vertices; disjoint pairs: 3 edges.
        g = gen.johnson_graph(4, 2, 4)
        assert g.n_vertices == 6
        assert g.n_edges == 3


class TestRandomFamilies:
    def test_barabasi_albert_size(self):
        g = gen.barabasi_albert(50, 3, seed=1)
        assert g.n_vertices == 50
        # m edges per new vertex after the initial star of m+1 vertices
        assert g.n_edges == 3 + (50 - 4) * 3

    def test_barabasi_albert_invalid_m(self):
        with pytest.raises(ValidationError):
            gen.barabasi_albert(5, 5)

    def test_barabasi_albert_reproducible(self):
        assert gen.barabasi_albert(40, 2, seed=9) == gen.barabasi_albert(40, 2, seed=9)

    def test_watts_strogatz_no_rewire(self):
        g = gen.watts_strogatz(20, 4, 0.0, seed=0)
        assert np.all(g.degrees() == 4)

    def test_watts_strogatz_rewired_edge_count_preserved(self):
        g = gen.watts_strogatz(30, 4, 0.5, seed=2)
        assert g.n_edges == 30 * 2

    def test_watts_strogatz_odd_k_rejected(self):
        with pytest.raises(ValidationError):
            gen.watts_strogatz(10, 3, 0.1)

    def test_configuration_model_degrees(self):
        degrees = [3, 3, 2, 2, 2, 2]
        g = gen.configuration_model(degrees, seed=4)
        assert g.n_vertices == 6
        assert np.all(g.degrees() <= np.array(degrees))

    def test_configuration_model_odd_sum_rejected(self):
        with pytest.raises(ValidationError):
            gen.configuration_model([3, 2])

    def test_configuration_model_degree_too_large(self):
        with pytest.raises(ValidationError):
            gen.configuration_model([3, 1, 1, 1][:2])

    def test_planted_partition_bisection_heavy(self):
        g = gen.planted_partition(40, 0.05, 0.9, seed=3)
        # cross edges should dominate within edges
        half = 20
        cross = sum(
            1 for (u, v) in g.edges if (u < half) != (v < half)
        )
        assert cross > g.n_edges / 2

    def test_random_regular(self):
        g = gen.random_regular(20, 4, seed=5)
        assert np.all(g.degrees() == 4)
        assert is_connected(g) or True  # connectivity not guaranteed, degrees are

    def test_random_regular_odd_product_rejected(self):
        with pytest.raises(ValidationError):
            gen.random_regular(5, 3)

    def test_random_regular_d_too_large(self):
        with pytest.raises(ValidationError):
            gen.random_regular(4, 4)


class TestStatisticalShape:
    def test_er_mean_degree(self):
        g = gen.erdos_renyi(300, 0.1, seed=11)
        stats = degree_statistics(g)
        assert abs(stats.mean - 0.1 * 299) < 4.0

    def test_ba_has_hubs(self):
        g = gen.barabasi_albert(200, 2, seed=12)
        stats = degree_statistics(g)
        assert stats.maximum > 3 * stats.mean
