"""Tests for the plasticity rules (Hebbian, Oja, anti-Hebbian Oja)."""

import numpy as np
import pytest

from repro.neurons.plasticity import (
    AntiHebbianMinorComponent,
    OjaPrincipalComponent,
    anti_hebbian_oja_update,
    hebbian_update,
    oja_update,
)
from repro.utils.validation import ValidationError


def _gaussian_samples(cov, n, rng):
    L = np.linalg.cholesky(cov + 1e-12 * np.eye(cov.shape[0]))
    return rng.standard_normal((n, cov.shape[0])) @ L.T


def _alignment(a, b):
    return abs(float(a @ b)) / (np.linalg.norm(a) * np.linalg.norm(b))


class TestUpdateFunctions:
    def test_hebbian_direction(self):
        w = np.array([1.0, 0.0])
        x = np.array([1.0, 1.0])
        new = hebbian_update(w, x, learning_rate=0.1)
        # y = 1, dw = 0.1 * x
        np.testing.assert_allclose(new, w + 0.1 * x)

    def test_hebbian_norm_grows(self, rng):
        # The plain Hebbian rule is unstable: the weight norm grows without the
        # Oja normalisation term.  A handful of aligned updates is enough to see it.
        w = rng.standard_normal(5)
        w /= np.linalg.norm(w)
        for _ in range(8):
            x = w + 0.1 * rng.standard_normal(5)
            w = hebbian_update(w, x, 0.1)
        assert np.linalg.norm(w) > 1.2

    def test_oja_update_formula(self):
        w = np.array([0.6, 0.8])
        x = np.array([1.0, 0.0])
        y = float(w @ x)
        expected = w + 0.05 * y * (x - y * w)
        np.testing.assert_allclose(oja_update(w, x, 0.05), expected)

    def test_anti_hebbian_formula(self):
        w = np.array([0.6, 0.8])
        x = np.array([1.0, -1.0])
        y = float(w @ x)
        expected = w + 0.05 * (-y * x + (y * y + 1.0 - float(w @ w)) * w)
        np.testing.assert_allclose(anti_hebbian_oja_update(w, x, 0.05), expected)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValidationError):
            oja_update(np.ones(3), np.ones(4))

    def test_nonpositive_learning_rate_raises(self):
        with pytest.raises(ValidationError):
            oja_update(np.ones(2), np.ones(2), 0.0)

    def test_fixed_point_of_anti_hebbian(self, rng):
        """A unit minor eigenvector is (in expectation) a fixed point of the rule."""
        cov = np.diag([3.0, 2.0, 0.5])
        minor = np.array([0.0, 0.0, 1.0])
        samples = _gaussian_samples(cov, 4000, rng)
        increments = []
        for x in samples:
            increments.append(anti_hebbian_oja_update(minor, x, 1.0) - minor)
        mean_increment = np.mean(increments, axis=0)
        assert np.linalg.norm(mean_increment) < 0.15


class TestOjaPrincipalComponent:
    def test_converges_to_principal_eigenvector(self, rng):
        cov = np.diag([5.0, 1.0, 0.2, 0.1])
        samples = _gaussian_samples(cov, 6000, rng)
        learner = OjaPrincipalComponent(4, learning_rate=0.01, seed=1)
        learner.train(samples)
        principal = np.array([1.0, 0.0, 0.0, 0.0])
        assert _alignment(learner.weights, principal) > 0.95

    def test_weight_norm_stays_near_one(self, rng):
        cov = np.diag([2.0, 1.0])
        samples = _gaussian_samples(cov, 3000, rng)
        learner = OjaPrincipalComponent(2, learning_rate=0.02, seed=2)
        learner.train(samples)
        assert 0.7 < np.linalg.norm(learner.weights) < 1.3

    def test_step_returns_output(self, rng):
        learner = OjaPrincipalComponent(3, seed=3)
        y = learner.step(np.array([1.0, 2.0, 3.0]))
        assert np.isfinite(y)

    def test_wrong_input_width(self, rng):
        learner = OjaPrincipalComponent(3, seed=4)
        with pytest.raises(ValidationError):
            learner.train(np.ones((10, 2)))

    def test_invalid_construction(self):
        with pytest.raises(ValidationError):
            OjaPrincipalComponent(0)
        with pytest.raises(ValidationError):
            OjaPrincipalComponent(3, learning_rate=-1.0)


class TestAntiHebbianMinorComponent:
    def test_converges_to_minor_eigenvector_diagonal(self, rng):
        cov = np.diag([4.0, 3.0, 0.2])
        samples = _gaussian_samples(cov, 8000, rng)
        learner = AntiHebbianMinorComponent(3, learning_rate=0.01, seed=5)
        learner.train(samples)
        minor = np.array([0.0, 0.0, 1.0])
        assert _alignment(learner.weights, minor) > 0.9

    def test_converges_for_general_covariance(self, rng):
        # random PSD covariance with a well-separated smallest eigenvalue
        Q, _ = np.linalg.qr(rng.standard_normal((4, 4)))
        cov = Q @ np.diag([5.0, 4.0, 3.0, 0.1]) @ Q.T
        samples = _gaussian_samples(cov, 12000, rng)
        learner = AntiHebbianMinorComponent(4, learning_rate=0.01, seed=6)
        learner.train(samples)
        minor = Q[:, 3]
        assert _alignment(learner.weights, minor) > 0.85

    def test_weight_norm_bounded(self, rng):
        cov = np.diag([2.0, 1.0, 0.5])
        samples = _gaussian_samples(cov, 4000, rng)
        learner = AntiHebbianMinorComponent(3, learning_rate=0.05, seed=7)
        learner.train(samples)
        assert np.linalg.norm(learner.weights) < 5.0

    def test_learning_rate_decay(self):
        learner = AntiHebbianMinorComponent(2, learning_rate=0.1, learning_rate_decay=1.0, seed=8)
        assert learner.current_learning_rate() == pytest.approx(0.1)
        learner.step(np.array([1.0, 0.0]))
        assert learner.current_learning_rate() == pytest.approx(0.05)

    def test_sign_assignment_values(self):
        learner = AntiHebbianMinorComponent(5, seed=9)
        assignment = learner.sign_assignment()
        assert set(np.unique(assignment)).issubset({-1, 1})
        assert assignment.shape == (5,)

    def test_input_normalisation_invariance(self, rng):
        """Scaling all inputs by a constant must not change the learned direction."""
        cov = np.diag([3.0, 1.0, 0.2])
        samples = _gaussian_samples(cov, 5000, rng)
        a = AntiHebbianMinorComponent(3, learning_rate=0.01, normalize_inputs=True, seed=10)
        b = AntiHebbianMinorComponent(3, learning_rate=0.01, normalize_inputs=True, seed=10)
        a.train(samples)
        b.train(1000.0 * samples)
        assert _alignment(a.weights, b.weights) > 0.999

    def test_invalid_construction(self):
        with pytest.raises(ValidationError):
            AntiHebbianMinorComponent(0)
        with pytest.raises(ValidationError):
            AntiHebbianMinorComponent(3, learning_rate_decay=-1.0)

    def test_train_wrong_width(self):
        learner = AntiHebbianMinorComponent(3, seed=11)
        with pytest.raises(ValidationError):
            learner.train(np.ones((5, 4)))

    def test_n_updates_counted(self, rng):
        learner = AntiHebbianMinorComponent(2, seed=12)
        learner.train(rng.standard_normal((7, 2)))
        assert learner.n_updates == 7
