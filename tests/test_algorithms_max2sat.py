"""Tests for the MAX2SAT extension."""

import itertools

import numpy as np
import pytest

from repro.algorithms.max2sat import (
    Clause,
    Max2SatInstance,
    max2sat_gw,
    random_max2sat_instance,
    satisfied_clauses,
)
from repro.utils.validation import ValidationError


def brute_force_max2sat(instance: Max2SatInstance) -> float:
    best = 0.0
    for bits in itertools.product([False, True], repeat=instance.n_variables):
        best = max(best, satisfied_clauses(instance, np.array(bits)))
    return best


class TestClause:
    def test_variables(self):
        clause = Clause(3, -1)
        assert clause.variables() == (2, 0)

    def test_unit_clause(self):
        assert Clause(2).variables() == (1,)

    def test_zero_literal_rejected(self):
        with pytest.raises(ValidationError):
            Clause(0)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValidationError):
            Clause(1, 2, weight=-1.0)


class TestInstance:
    def test_counts(self):
        instance = Max2SatInstance(3, (Clause(1, 2), Clause(-1, 3)))
        assert instance.n_clauses == 2
        assert instance.total_weight == 2.0

    def test_variable_out_of_range_rejected(self):
        with pytest.raises(ValidationError):
            Max2SatInstance(2, (Clause(1, 3),))

    def test_needs_variables(self):
        with pytest.raises(ValidationError):
            Max2SatInstance(0, ())


class TestSatisfiedClauses:
    def test_simple(self):
        instance = Max2SatInstance(2, (Clause(1, 2), Clause(-1, -2)))
        assert satisfied_clauses(instance, np.array([True, False])) == 2.0
        assert satisfied_clauses(instance, np.array([True, True])) == 1.0

    def test_unit_clause(self):
        instance = Max2SatInstance(1, (Clause(-1),))
        assert satisfied_clauses(instance, np.array([False])) == 1.0
        assert satisfied_clauses(instance, np.array([True])) == 0.0

    def test_weighted(self):
        instance = Max2SatInstance(2, (Clause(1, 2, weight=3.0),))
        assert satisfied_clauses(instance, np.array([False, True])) == 3.0

    def test_wrong_shape_raises(self):
        instance = Max2SatInstance(2, (Clause(1, 2),))
        with pytest.raises(ValidationError):
            satisfied_clauses(instance, np.array([True]))


class TestRandomInstance:
    def test_shape(self):
        instance = random_max2sat_instance(10, 30, seed=0)
        assert instance.n_variables == 10
        assert instance.n_clauses == 30

    def test_distinct_variables_per_clause(self):
        instance = random_max2sat_instance(5, 40, seed=1)
        for clause in instance.clauses:
            assert abs(clause.literal1) != abs(clause.literal2)

    def test_reproducible(self):
        a = random_max2sat_instance(6, 12, seed=2)
        b = random_max2sat_instance(6, 12, seed=2)
        assert a.clauses == b.clauses

    def test_invalid_sizes(self):
        with pytest.raises(ValidationError):
            random_max2sat_instance(1, 5)
        with pytest.raises(ValidationError):
            random_max2sat_instance(4, 0)


class TestMax2SatGW:
    def test_value_consistent(self):
        instance = random_max2sat_instance(8, 20, seed=3)
        result = max2sat_gw(instance, n_samples=64, seed=4)
        assert result.value == pytest.approx(satisfied_clauses(instance, result.assignment))

    def test_approximation_quality(self):
        for seed in (5, 6):
            instance = random_max2sat_instance(7, 18, seed=seed)
            opt = brute_force_max2sat(instance)
            result = max2sat_gw(instance, n_samples=200, seed=seed)
            assert result.value >= 0.8 * opt

    def test_trivially_satisfiable(self):
        instance = Max2SatInstance(2, (Clause(1, 2), Clause(1, -2)))
        result = max2sat_gw(instance, n_samples=64, seed=7)
        assert result.value == 2.0

    def test_requires_samples(self):
        instance = random_max2sat_instance(4, 6, seed=8)
        with pytest.raises(ValidationError):
            max2sat_gw(instance, n_samples=0)
