"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import RandomState, SeedStream, as_generator, random_bits, spawn_generators


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_is_reproducible(self):
        a = as_generator(42).random(5)
        b = as_generator(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_generator(1).random(5)
        b = as_generator(2).random(5)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g

    def test_seed_sequence_accepted(self):
        ss = np.random.SeedSequence(7)
        g = as_generator(ss)
        assert isinstance(g, np.random.Generator)

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError):
            as_generator("not-a-seed")


class TestSpawnGenerators:
    def test_count(self):
        gens = spawn_generators(0, 5)
        assert len(gens) == 5

    def test_streams_are_independent(self):
        g0, g1 = spawn_generators(123, 2)
        assert not np.array_equal(g0.random(10), g1.random(10))

    def test_reproducible_from_int(self):
        a = [g.random(3) for g in spawn_generators(9, 3)]
        b = [g.random(3) for g in spawn_generators(9, 3)]
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_zero_streams(self):
        assert spawn_generators(1, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_generators(1, -1)

    def test_from_generator_is_deterministic_given_state(self):
        g = np.random.default_rng(5)
        children_a = [c.random(2) for c in spawn_generators(g, 2)]
        g2 = np.random.default_rng(5)
        children_b = [c.random(2) for c in spawn_generators(g2, 2)]
        for x, y in zip(children_a, children_b):
            np.testing.assert_array_equal(x, y)


class TestSeedStream:
    def test_same_index_same_stream(self):
        stream = SeedStream(77)
        a = stream.generator_for(3).random(4)
        b = SeedStream(77).generator_for(3).random(4)
        np.testing.assert_array_equal(a, b)

    def test_different_indices_differ(self):
        stream = SeedStream(77)
        a = stream.generator_for(0).random(4)
        b = stream.generator_for(1).random(4)
        assert not np.array_equal(a, b)

    def test_order_independence(self):
        stream = SeedStream(5)
        late_first = stream.generator_for(9).random(3)
        other = SeedStream(5)
        _ = other.generator_for(0).random(3)
        late_second = other.generator_for(9).random(3)
        np.testing.assert_array_equal(late_first, late_second)

    def test_generators_list(self):
        gens = SeedStream(1).generators(4)
        assert len(gens) == 4

    def test_negative_index_raises(self):
        with pytest.raises(ValueError):
            SeedStream(1).child(-1)

    def test_iter_generators(self):
        it = SeedStream(3).iter_generators()
        first = next(it)
        second = next(it)
        assert not np.array_equal(first.random(3), second.random(3))


class TestRandomBits:
    def test_shape_and_values(self):
        bits = random_bits(np.random.default_rng(0), (10, 4))
        assert bits.shape == (10, 4)
        assert set(np.unique(bits)).issubset({0, 1})

    def test_scalar_shape(self):
        bits = random_bits(np.random.default_rng(0), 16)
        assert bits.shape == (16,)

    def test_roughly_fair(self):
        bits = random_bits(np.random.default_rng(1), 10_000)
        assert 0.45 < bits.mean() < 0.55
