"""Tests for the unified workload API (repro.workloads)."""

import dataclasses
import json

import numpy as np
import pytest

from repro.arena.results import ArenaEntry
from repro.experiments.config import Figure3Config
from repro.graphs.generators import complete_bipartite, erdos_renyi
from repro.utils.rng import paired_seed
from repro.utils.validation import ValidatedConfig, ValidationError
from repro.workloads import (
    Budget,
    ExecutionPolicy,
    GraphSource,
    RunReport,
    Session,
    Workload,
    WorkloadSpec,
    arena_result_from_report,
    get_workload,
    list_workloads,
    register_workload,
    run_workload,
)
from repro.workloads.registry import WORKLOADS, coerce_param, resolve_params


class TestGraphSource:
    def test_suite_source_builds_deterministically(self):
        source = GraphSource.from_suite("er-small")
        a = source.build(7)
        b = source.build(7)
        assert [g.name for g in a] == [g.name for g in b]
        for ga, gb in zip(a, b):
            np.testing.assert_array_equal(ga.edges, gb.edges)

    def test_generator_grid_shape_and_names(self):
        source = GraphSource.erdos_renyi_grid((12, 16), (0.4,), per_cell=2)
        graphs = source.build(0)
        assert len(graphs) == 4
        assert graphs[0].name == "er-12-0.4-0"
        assert len({g.name for g in graphs}) == 4

    def test_generator_grid_matches_figure3_graph_stream(self):
        # grid_cell_key's contract: same (seed, n, p, j) -> same graph on
        # every workload path.  Reconstruct graph j the way the Figure 3
        # runner does (first spawned child of the cell-graph sequence) and
        # compare against the generator source.
        from repro.graphs.generators import erdos_renyi as er
        from repro.utils.rng import grid_cell_key, spawn_generators

        source = GraphSource.erdos_renyi_grid((12,), (0.4,), per_cell=2)
        graphs = source.build(5)
        for j, graph in enumerate(graphs):
            rng = spawn_generators(paired_seed(5, *grid_cell_key(12, 0.4), j), 5)[0]
            expected = er(12, 0.4, seed=rng)
            np.testing.assert_array_equal(graph.edges, expected.edges)

    def test_repository_source_by_name(self):
        source = GraphSource.repository(("road-chesapeake",))
        graphs = source.build(0)
        assert [g.name for g in graphs] == ["road-chesapeake"]

    def test_explicit_source_passthrough(self):
        graph = complete_bipartite(3, 4, name="k34")
        source = GraphSource.explicit([graph])
        assert source.build(0)[0] is graph
        assert source.to_dict()["names"] == ["k34"]

    def test_coerce_accepts_key_list_and_source(self):
        assert GraphSource.coerce("er-small").kind == "suite"
        graphs = [erdos_renyi(8, 0.5, seed=0, name="toy")]
        assert GraphSource.coerce(graphs).kind == "explicit"
        source = GraphSource.from_suite("er-small")
        assert GraphSource.coerce(source) is source

    def test_invalid_sources_rejected(self):
        with pytest.raises(ValidationError):
            GraphSource(kind="nope")
        with pytest.raises(ValidationError):
            GraphSource.erdos_renyi_grid((), (0.5,))
        with pytest.raises(ValidationError):
            GraphSource.erdos_renyi_grid((10,), (1.5,))
        with pytest.raises(ValidationError):
            GraphSource.explicit([])
        with pytest.raises(ValidationError):
            GraphSource.coerce(42)


class TestBudgetAndPolicy:
    def test_budget_is_arena_budget(self):
        from repro.arena import ArenaBudget

        assert ArenaBudget is Budget

    @pytest.mark.parametrize("kwargs", [
        {"n_trials": 0},
        {"n_samples": 0},
        {"max_seconds": 0.0},
        {"max_seconds": -1.0},
    ])
    def test_invalid_budget_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            Budget(**kwargs)

    def test_policy_modes(self):
        assert ExecutionPolicy(mode="auto").use_engine
        assert ExecutionPolicy(mode="engine").use_engine
        assert not ExecutionPolicy(mode="parallel").use_engine
        assert ExecutionPolicy(mode="sequential").parallel_config().n_workers == 1
        with pytest.raises(ValidationError):
            ExecutionPolicy(mode="warp")


class TestWorkloadSpec:
    def test_empty_solvers_rejected(self):
        with pytest.raises(ValidationError):
            WorkloadSpec(
                workload="x", graphs=GraphSource.from_suite("er-small"), solvers=(),
            )

    def test_resolve_rejects_alias_duplicates(self):
        spec = WorkloadSpec(
            workload="x", graphs=GraphSource.from_suite("er-small"),
            solvers=("gw", "solver"),
        )
        with pytest.raises(ValidationError, match="more than once"):
            spec.resolve_solvers()

    def test_to_dict_is_json_safe(self):
        spec = WorkloadSpec(
            workload="x", graphs=GraphSource.erdos_renyi_grid((10,), (0.5,)),
            solvers=("random",), budget=Budget(n_trials=2, n_samples=8),
            params={"extra": (1, 2)},
        )
        payload = spec.to_dict()
        json.dumps(payload)  # must not raise
        assert payload["budget"]["n_trials"] == 2
        assert payload["graphs"]["kind"] == "generator"


class TestValidatedConfigMixin:
    def test_experiment_configs_share_the_mixin(self):
        from repro.experiments.config import (
            AblationConfig,
            Figure4Config,
            Table1Config,
        )

        for cls in (Figure3Config, Figure4Config, Table1Config, AblationConfig,
                    Budget, ExecutionPolicy, GraphSource, WorkloadSpec):
            assert issubclass(cls, ValidatedConfig)

    def test_to_dict_round_trips_through_json(self):
        payload = Figure3Config(sizes=(12,), probabilities=(0.4,)).to_dict()
        assert json.loads(json.dumps(payload)) == payload
        # Nested circuit configs are rendered as nested dictionaries.
        assert isinstance(payload["lif_gw"], dict)


class TestRegistry:
    def test_paper_workloads_registered(self):
        assert list_workloads() == [
            "ablation", "arena", "bench", "evolving", "figure3", "figure4",
            "problems", "table1",
        ]

    def test_unknown_workload_has_suggestion(self):
        with pytest.raises(ValidationError, match="did you mean 'figure3'"):
            get_workload("figure33")

    def test_register_collision_raises(self):
        workload = get_workload("arena")
        with pytest.raises(ValidationError, match="already registered"):
            register_workload(workload)

    def test_register_and_run_custom_workload(self):
        workload = Workload(
            name="_test-workload",
            summary="tiny generic race",
            defaults={"trials": 2, "samples": 8},
            build_spec=lambda params: WorkloadSpec(
                workload="_test-workload",
                graphs=GraphSource.erdos_renyi_grid((10,), (0.5,)),
                solvers=("random", "trevisan"),
                budget=Budget(n_trials=params["trials"], n_samples=params["samples"]),
                seed=params["seed"],
                params=params,
            ),
        )
        try:
            register_workload(workload)
            report = run_workload("_test-workload", seed=1)
            assert isinstance(report, RunReport)
            assert len(report.records) == 2  # 2 solvers x 1 graph
            assert report.winner() in {"random", "trevisan"}
        finally:
            WORKLOADS.pop("_test-workload", None)

    def test_resolve_params_rejects_unknown_keys(self):
        with pytest.raises(ValidationError, match="no parameter"):
            resolve_params(get_workload("figure3"), {"bogus": 1})

    def test_coerce_param_types(self):
        assert coerce_param("sizes", "12,16", (50,)) == (12, 16)
        assert coerce_param("probabilities", "0.4", (0.25,)) == (0.4,)
        assert coerce_param("trials", "3", 4) == 3
        assert coerce_param("use_engine", "false", True) is False
        assert coerce_param("max_seconds", "none", None) is None
        assert coerce_param("max_seconds", "1.5", None) == 1.5
        assert coerce_param("kind", "rank", "devices") == "rank"
        with pytest.raises(ValidationError):
            coerce_param("trials", "three", 4)
        with pytest.raises(ValidationError):
            coerce_param("use_engine", "maybe", True)
        # Optional-number params reject junk text instead of smuggling a str
        # into Budget (which would surface as a TypeError downstream).
        with pytest.raises(ValidationError, match="number or 'none'"):
            coerce_param("max_seconds", "abc", None)
        with pytest.raises(ValidationError):
            Budget(n_trials=1, n_samples=1, max_seconds="abc")


class TestSession:
    @pytest.fixture
    def tiny_spec(self):
        return WorkloadSpec(
            workload="adhoc",
            graphs=GraphSource.explicit([
                erdos_renyi(12, 0.4, seed=3, name="tiny-er"),
                complete_bipartite(4, 5, name="tiny-k45"),
            ]),
            solvers=("random", "trevisan"),
            budget=Budget(n_trials=2, n_samples=16),
            seed=0,
        )

    def test_bare_spec_runs_through_generic_executor(self, tiny_spec):
        report = Session(tiny_spec).run()
        assert report.workload == "adhoc"
        assert len(report.records) == 4  # 2 solvers x 2 graphs
        assert all(isinstance(r, ArenaEntry) for r in report.records)
        assert {row["solver"] for row in report.leaderboard} == {"random", "trevisan"}
        # Leaderboard rows are ranked best-score-first.
        scores = [row["score"] for row in report.leaderboard]
        assert scores == sorted(scores, reverse=True)

    def test_plan_routes_by_capability(self):
        spec = WorkloadSpec(
            workload="adhoc",
            graphs=GraphSource.explicit([erdos_renyi(10, 0.5, seed=1, name="g")]),
            solvers=("lif_tr", "trevisan", "random"),
            budget=Budget(n_trials=3, n_samples=8),
            policy=ExecutionPolicy(mode="auto", n_workers=4),
            seed=0,
        )
        plan = Session(spec).plan()
        routes = {step.solver: step.route for step in plan.steps}
        assert routes["lif_tr"].startswith("engine[")
        assert routes["trevisan"] == "once"
        assert routes["random"] == "parallel[4]"
        trials = {step.solver: step.n_trials for step in plan.steps}
        assert trials == {"lif_tr": 3, "trevisan": 1, "random": 3}
        assert "adhoc" in plan.describe()

    def test_plan_resolves_cpu_count_workers(self):
        # n_workers=None fans out over os.cpu_count() processes; the plan
        # must preview that, not claim "sequential".
        import os

        spec = WorkloadSpec(
            workload="adhoc",
            graphs=GraphSource.explicit([erdos_renyi(10, 0.5, seed=1, name="g")]),
            solvers=("random",),
            budget=Budget(n_trials=2, n_samples=4),
            policy=ExecutionPolicy(mode="parallel", n_workers=None),
            seed=0,
        )
        route = Session(spec).plan().steps[0].route
        if (os.cpu_count() or 1) > 1:
            assert route == f"parallel[{os.cpu_count()}]"
        else:  # pragma: no cover - single-core CI runner
            assert route == "sequential"

    def test_seed_none_resolved_once_and_recorded(self):
        spec = WorkloadSpec(
            workload="adhoc",
            graphs=GraphSource.explicit([erdos_renyi(10, 0.5, seed=1, name="g")]),
            solvers=("random",),
            budget=Budget(n_trials=1, n_samples=4),
            seed=None,
        )
        session = Session(spec)
        assert session.spec.seed is not None
        assert session.plan().seed == session.spec.seed
        report = session.run()
        assert report.seed == session.spec.seed

    def test_mismatched_workload_pairing_rejected(self, tiny_spec):
        with pytest.raises(ValidationError, match="paired"):
            Session(tiny_spec, get_workload("arena"))

    def test_validate_rejects_unknown_solver(self):
        spec = WorkloadSpec(
            workload="adhoc", graphs=GraphSource.from_suite("er-small"),
            solvers=("quantum",),
        )
        with pytest.raises(ValidationError, match="unknown solver"):
            Session(spec).validate()

    def test_validate_rejects_unknown_suite(self):
        spec = WorkloadSpec(
            workload="adhoc", graphs=GraphSource.from_suite("not-a-suite"),
            solvers=("random",),
        )
        with pytest.raises(ValidationError, match="available"):
            Session(spec).validate()


class TestRunReport:
    def test_save_persists_header_and_records(self, tmp_path):
        report = run_workload(
            "arena", solvers=("random", "trevisan"), suite="er-small",
            trials=2, samples=8, seed=0,
            save=str(tmp_path / "report.json"),
        )
        payload = json.loads((tmp_path / "report.json").read_text())
        assert payload["experiment"] == "arena"
        assert payload["config"]["workload"] == "arena"
        assert payload["config"]["suite"] == "er-small"
        assert payload["config"]["seed"] == 0
        assert payload["config"]["leaderboard"] == report.leaderboard
        assert len(payload["results"]) == len(report.records)
        assert payload["results"][0]["__type__"] == "ArenaEntry"

    def test_arena_result_view_round_trips(self):
        report = run_workload(
            "arena", solvers=("random", "trevisan"), suite="er-small",
            trials=2, samples=8, seed=0,
        )
        result = arena_result_from_report(report)
        assert result.suite == "er-small"
        assert result.winner() == report.winner()
        assert result.entries == report.records


class TestWorkloadSeeding:
    """The paired SeedSequence(seed, spawn_key=(graph, trial)) contract."""

    def test_engine_and_sequential_paths_agree(self):
        kwargs = dict(
            solvers=("lif_tr",), suite="er-small", trials=2, samples=16, seed=5,
        )
        engine = run_workload("arena", use_engine=True, **kwargs)
        sequential = run_workload("arena", use_engine=False, **kwargs)
        assert all(e.used_engine for e in engine.records)
        assert not any(e.used_engine for e in sequential.records)
        for ea, eb in zip(engine.records, sequential.records):
            assert ea.graph_name == eb.graph_name
            assert ea.best_weight == pytest.approx(eb.best_weight)
            assert ea.mean_weight == pytest.approx(eb.mean_weight)

    def test_generic_executor_uses_paired_roots(self):
        # Trial i on graph g must consume SeedSequence(seed, spawn_key=(g, i)):
        # reproduce one cell by hand and compare against the workload records.
        from repro.algorithms.registry import get_solver

        report = run_workload(
            "arena", solvers=("random",), suite="er-small",
            trials=2, samples=8, seed=9,
        )
        graphs = GraphSource.from_suite("er-small").build(9)
        solver = get_solver("random")
        for g, (graph, entry) in enumerate(zip(graphs, report.records)):
            expected = [
                float(solver(graph, n_samples=8, seed=paired_seed(9, g, i)).weight)
                for i in range(2)
            ]
            assert entry.metadata["trial_weights"] == pytest.approx(expected)

    def test_seed_none_custom_executor_reproducible_from_report(self):
        # The session resolves seed=None to drawn entropy; custom executors
        # (figure/table/ablation) must run on that resolution, so re-running
        # with the recorded report.seed reproduces the results exactly.
        first = run_workload("table1", graphs=("road-chesapeake",),
                             samples=16, seed=None)
        again = run_workload("table1", graphs=("road-chesapeake",),
                             samples=16, seed=first.seed)
        assert first.seed == again.seed
        assert first.records[0].measured == again.records[0].measured

    def test_run_reproducible_across_calls(self):
        kwargs = dict(solvers=("random", "annealing"), suite="er-small",
                      trials=2, samples=8, seed=42)
        a = run_workload("arena", **kwargs)
        b = run_workload("arena", **kwargs)
        for ea, eb in zip(a.records, b.records):
            assert ea.best_weight == eb.best_weight
            assert ea.mean_weight == eb.mean_weight


class TestBudgetDeadline:
    """Budget.max_seconds as a real engine deadline (satellite of PR 6)."""

    def test_engine_cell_truncates_under_tight_budget(self):
        from repro.cuts.cut import cut_weight
        from repro.workloads.executor import execute_spec

        spec = WorkloadSpec(
            workload="arena",
            graphs=GraphSource.from_suite("er-small"),
            solvers=("lif_tr",),
            budget=Budget(n_trials=4, n_samples=4000, max_seconds=1e-4),
            policy=ExecutionPolicy(mode="auto"),
            seed=3,
        )
        report = execute_spec(spec)
        for entry in report.entries:
            assert entry.used_engine
            assert entry.metadata["budget_truncated"] is True
            # Truncated, but every recorded round is a real one...
            assert 1 <= entry.metadata["n_rounds"] < 4000
            # ...and the best weight is a valid cut (positive on ER graphs).
            assert entry.best_weight > 0

    def test_generous_budget_leaves_results_untouched(self):
        kwargs = dict(solvers=("lif_tr",), suite="er-small", trials=2, samples=8, seed=4)
        free = run_workload("arena", **kwargs)
        capped = run_workload("arena", max_seconds=3600.0, **kwargs)
        for ea, eb in zip(free.records, capped.records):
            assert ea.best_weight == eb.best_weight
            assert "budget_truncated" not in eb.metadata
