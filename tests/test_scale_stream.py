"""Tests for evolving-graph streams, versions, and warm re-solves."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cuts.cut import cut_weight
from repro.graphs.graph import Graph
from repro.scale.generators import scale_watts_strogatz
from repro.scale.stream import (
    EdgeDelta,
    EdgeStream,
    GraphVersion,
    apply_deltas,
    sparse_greedy_improve,
    warm_resolve,
    warm_start_assignment,
)
from repro.utils.validation import ValidationError


@pytest.fixture
def small_graph():
    return Graph(5, [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 1.0), (3, 4, 1.0)], name="path5")


class TestEdgeDelta:
    def test_validates_op_loop_and_weight(self):
        with pytest.raises(ValidationError):
            EdgeDelta("swap", 0, 1)
        with pytest.raises(ValidationError):
            EdgeDelta("add", 2, 2)
        with pytest.raises(ValidationError):
            EdgeDelta("add", 0, 1, weight=float("nan"))

    def test_roundtrips_through_dict(self):
        delta = EdgeDelta("reweight", 3, 1, weight=2.5)
        assert EdgeDelta.from_dict(delta.to_dict()) == delta
        assert delta.endpoints() == (1, 3)


class TestApplyDeltas:
    def test_add_remove_reweight_semantics(self, small_graph):
        out = apply_deltas(small_graph, [
            EdgeDelta("add", 0, 4, weight=3.0),
            EdgeDelta("remove", 1, 2),
            EdgeDelta("reweight", 2, 3, weight=5.0),
        ])
        assert out.n_edges == 4
        lookup = {tuple(e): w for e, w in zip(out.edges.tolist(),
                                              out.edge_weights.tolist())}
        assert lookup[(0, 4)] == 3.0
        assert lookup[(2, 3)] == 5.0
        assert (1, 2) not in lookup

    def test_strict_errors(self, small_graph):
        with pytest.raises(ValidationError, match="already exists"):
            apply_deltas(small_graph, [EdgeDelta("add", 0, 1)])
        with pytest.raises(ValidationError, match="does not exist"):
            apply_deltas(small_graph, [EdgeDelta("remove", 0, 4)])
        with pytest.raises(ValidationError, match="does not exist"):
            apply_deltas(small_graph, [EdgeDelta("reweight", 0, 4)])
        with pytest.raises(ValidationError, match="out of range"):
            apply_deltas(small_graph, [EdgeDelta("add", 0, 99)])

    def test_sequential_within_batch(self, small_graph):
        # add then remove of the same edge cancels; remove then re-add swaps
        # the weight without summing.
        out = apply_deltas(small_graph, [
            EdgeDelta("add", 0, 4),
            EdgeDelta("remove", 0, 4),
            EdgeDelta("remove", 0, 1),
            EdgeDelta("add", 0, 1, weight=9.0),
        ])
        lookup = {tuple(e): w for e, w in zip(out.edges.tolist(),
                                              out.edge_weights.tolist())}
        assert (0, 4) not in lookup
        assert lookup[(0, 1)] == 9.0

    def test_replay_fingerprint_equals_scratch_build(self):
        base = scale_watts_strogatz(150, 4, 0.1, seed=2)
        stream = EdgeStream.random(base, n_steps=5, deltas_per_step=12, seed=3)
        version = GraphVersion.initial(base)
        for batch in stream:
            version = version.apply(batch)
        final = version.graph
        scratch = Graph(
            final.n_vertices,
            [
                (int(u), int(v), float(w))
                for (u, v), w in zip(final.edges, final.edge_weights)
            ],
            name=final.name,
        )
        assert final.fingerprint() == scratch.fingerprint()


class TestEdgeStream:
    def test_deterministic_and_replayable(self):
        base = scale_watts_strogatz(80, 4, 0.1, seed=1)
        s1 = EdgeStream.random(base, 3, 6, seed=5)
        s2 = EdgeStream.random(base, 3, 6, seed=5)
        assert len(s1) == 3
        for b1, b2 in zip(s1, s2):
            assert b1 == b2

    def test_every_batch_applies_cleanly(self):
        base = scale_watts_strogatz(60, 4, 0.3, seed=0)
        stream = EdgeStream.random(base, 6, 15, seed=1)
        graph = base
        for batch in stream:
            graph = apply_deltas(graph, batch)  # strict: raises on bad delta

    def test_validation(self):
        with pytest.raises(ValidationError):
            EdgeStream([["not-a-delta"]])
        with pytest.raises(ValidationError):
            EdgeStream.random(Graph(1), 1, 1)


class TestGraphVersion:
    def test_chain_links_parent_fingerprints(self, small_graph):
        v0 = GraphVersion.initial(small_graph)
        v1 = v0.apply([EdgeDelta("add", 0, 4)])
        v2 = v1.apply([EdgeDelta("remove", 0, 4)])
        assert v0.version == 0 and v0.parent_fingerprint is None
        assert v1.version == 1 and v1.parent_fingerprint == v0.fingerprint()
        assert v2.version == 2 and v2.parent_fingerprint == v1.fingerprint()
        # add + remove of the same edge returns to the original content.
        assert v2.fingerprint() != v1.fingerprint()
        assert v2.graph.n_edges == small_graph.n_edges

    def test_default_names_track_versions(self, small_graph):
        v1 = GraphVersion.initial(small_graph).apply([EdgeDelta("add", 0, 2)])
        assert v1.graph.name == "path5@v1"


class TestWarmResolve:
    def test_sparse_greedy_improves_monotonically(self):
        graph = scale_watts_strogatz(200, 6, 0.2, seed=4)
        start = np.ones(graph.n_vertices, dtype=np.int8)
        improved = sparse_greedy_improve(graph, start)
        assert improved.weight >= cut_weight(graph, start)
        assert improved.weight == pytest.approx(
            cut_weight(graph, improved.assignment)
        )
        assert graph._adjacency is None  # stayed sparse throughout

    def test_max_flips_caps_work(self):
        graph = scale_watts_strogatz(100, 4, 0.2, seed=4)
        start = np.ones(graph.n_vertices, dtype=np.int8)
        capped = sparse_greedy_improve(graph, start, max_flips=1)
        full = sparse_greedy_improve(graph, start)
        assert capped.weight <= full.weight

    def test_warm_start_assignment_pads_and_truncates(self):
        src = np.array([-1, 1, -1], dtype=np.int8)
        assert warm_start_assignment(src, 5).tolist() == [-1, 1, -1, 1, 1]
        assert warm_start_assignment(src, 2).tolist() == [-1, 1]

    def test_warm_resolve_tracks_cold_quality(self):
        base = scale_watts_strogatz(150, 4, 0.1, seed=6)
        cold = warm_resolve(base, seed=0)
        stream = EdgeStream.random(base, 1, 10, seed=7)
        version = GraphVersion.initial(base).apply(stream.step(0))
        warm = warm_resolve(version.graph, previous=cold)
        reference = warm_resolve(version.graph, seed=0)
        assert warm.weight >= 0.9 * reference.weight

    def test_empty_graph(self):
        cut = warm_resolve(Graph(0))
        assert cut.weight == 0.0 and cut.assignment.shape == (0,)
