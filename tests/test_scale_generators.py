"""Tests for the CSR-native scale-free generators (repro.scale.generators)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.generators import erdos_renyi
from repro.graphs.graph import Graph
from repro.scale.generators import (
    scale_barabasi_albert,
    scale_configuration_model,
    scale_watts_strogatz,
    stochastic_kronecker,
)
from repro.utils.validation import ValidationError

BUILDERS = {
    "ba": lambda seed: scale_barabasi_albert(400, 3, seed=seed),
    "config": lambda seed: scale_configuration_model([4] * 300, seed=seed),
    "ws": lambda seed: scale_watts_strogatz(300, 6, 0.1, seed=seed),
    "kron": lambda seed: stochastic_kronecker(8, 4, seed=seed),
}


class TestFromEdgeArrays:
    def test_matches_dict_construction_and_fingerprint(self):
        edges = [(0, 1, 1.0), (1, 2, 2.5), (0, 3, 0.5)]
        reference = Graph(4, edges, name="ref")
        u = np.array([e[0] for e in edges], dtype=np.int64)
        v = np.array([e[1] for e in edges], dtype=np.int64)
        weights = np.array([e[2] for e in edges])
        fast = Graph.from_edge_arrays(4, u, v, weights=weights, name="ref")
        assert np.array_equal(reference.edges, fast.edges)
        assert np.array_equal(reference.edge_weights, fast.edge_weights)
        assert reference.fingerprint() == fast.fingerprint()

    def test_duplicate_edges_sum_like_graph_init(self):
        reference = Graph(3, [(0, 1, 1.0), (1, 0, 2.0)])
        fast = Graph.from_edge_arrays(
            3, np.array([0, 1]), np.array([1, 0]), weights=np.array([1.0, 2.0])
        )
        assert reference.fingerprint() == fast.fingerprint()
        assert fast.edge_weights.tolist() == [3.0]

    def test_rejects_self_loops_and_out_of_range(self):
        with pytest.raises(ValidationError):
            Graph.from_edge_arrays(3, np.array([1]), np.array([1]))
        with pytest.raises(ValidationError):
            Graph.from_edge_arrays(3, np.array([0]), np.array([3]))


class TestDeterminism:
    @pytest.mark.parametrize("key", sorted(BUILDERS))
    def test_same_seed_same_graph(self, key):
        a, b = BUILDERS[key](7), BUILDERS[key](7)
        assert np.array_equal(a.edges, b.edges)
        assert np.array_equal(a.edge_weights, b.edge_weights)
        assert a.fingerprint() == b.fingerprint()

    @pytest.mark.parametrize("key", sorted(BUILDERS))
    def test_different_seed_different_graph(self, key):
        assert BUILDERS[key](7).fingerprint() != BUILDERS[key](8).fingerprint()

    def test_generators_use_independent_streams_per_family(self):
        # Same root seed, different families: the per-generator spawn tags
        # must not correlate the outputs (trivially true structurally, but
        # guard the convention).
        ba = scale_barabasi_albert(100, 2, seed=3)
        ws = scale_watts_strogatz(100, 4, 0.3, seed=3)
        assert ba.fingerprint() != ws.fingerprint()


class TestSimpleGraphInvariants:
    @pytest.mark.parametrize("key", sorted(BUILDERS))
    def test_canonical_simple_edges(self, key):
        graph = BUILDERS[key](11)
        edges = graph.edges
        assert np.all(edges[:, 0] < edges[:, 1])  # no self-loops, canonical order
        keys = edges[:, 0] * graph.n_vertices + edges[:, 1]
        assert np.unique(keys).shape[0] == keys.shape[0]  # no duplicates

    @pytest.mark.parametrize("key", sorted(BUILDERS))
    def test_no_dense_adjacency_materialised(self, key):
        graph = BUILDERS[key](11)
        assert graph._adjacency is None

    def test_ba_edge_count_near_sequential_construction(self):
        n, m = 2000, 3
        graph = scale_barabasi_albert(n, m, seed=0)
        expected = m + (n - m - 1) * m
        assert expected * 0.95 <= graph.n_edges <= expected

    def test_ws_edge_count_is_lattice_count(self):
        graph = scale_watts_strogatz(200, 6, 0.2, seed=0)
        assert graph.n_edges == 200 * 3


class TestPowerLawTail:
    def test_ba_degree_tail_heavier_than_er_at_equal_density(self):
        n = 2000
        ba = scale_barabasi_albert(n, 3, seed=5)
        p = 2.0 * ba.n_edges / (n * (n - 1))
        er = erdos_renyi(n, p, seed=5)
        ba_deg = np.asarray(ba.degrees())
        er_deg = np.asarray(er.degrees())
        # Preferential attachment produces hubs far beyond anything an ER
        # graph of the same density has.
        assert ba_deg.max() > 2.0 * er_deg.max()
        assert ba_deg.std() > 1.5 * er_deg.std()


class TestValidation:
    def test_ba_rejects_bad_parameters(self):
        with pytest.raises(ValidationError):
            scale_barabasi_albert(10, 0)
        with pytest.raises(ValidationError):
            scale_barabasi_albert(3, 3)

    def test_config_rejects_odd_sum_and_negative(self):
        with pytest.raises(ValidationError):
            scale_configuration_model([3, 2])
        with pytest.raises(ValidationError):
            scale_configuration_model([-1, 1])
        with pytest.raises(ValidationError):
            scale_configuration_model([])

    def test_ws_rejects_odd_or_oversized_k(self):
        with pytest.raises(ValidationError):
            scale_watts_strogatz(10, 3, 0.1)
        with pytest.raises(ValidationError):
            scale_watts_strogatz(10, 10, 0.1)
        with pytest.raises(ValidationError):
            scale_watts_strogatz(10, 4, 1.5)

    def test_kronecker_rejects_bad_initiator_and_scale(self):
        with pytest.raises(ValidationError):
            stochastic_kronecker(31)
        with pytest.raises(ValidationError):
            stochastic_kronecker(5, initiator=(0.5, 0.5))
        with pytest.raises(ValidationError):
            stochastic_kronecker(5, initiator=(-1.0, 0.5, 0.5, 0.5))

    def test_config_model_degrees_bounded_by_targets(self):
        degrees = [5] * 100
        graph = scale_configuration_model(degrees, seed=9)
        realised = np.asarray(graph.degrees())
        assert np.all(realised <= 5)
        assert realised.mean() > 3.0  # simple-graph projection loses few stubs
