"""Documentation smoke tests (the ``docs`` marker).

Guards the promises the README and DESIGN.md make: every public module
imports cleanly, public packages and modules carry a real docstring (so
``python -m pydoc repro.<mod>`` is usable), the README quickstart commands
parse, and the README's architecture map does not reference packages that
do not exist.
"""

from __future__ import annotations

import importlib
import pkgutil
from pathlib import Path

import pytest

import repro

pytestmark = pytest.mark.docs

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Every importable module under repro (computed once at collection time).
ALL_MODULES = sorted(
    {"repro"}
    | {
        info.name
        for info in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    }
)

#: The public packages whose docs the README points at.
PUBLIC_PACKAGES = [
    "repro",
    "repro.algorithms",
    "repro.analysis",
    "repro.arena",
    "repro.circuits",
    "repro.cuts",
    "repro.devices",
    "repro.distrib",
    "repro.engine",
    "repro.experiments",
    "repro.graphs",
    "repro.ising",
    "repro.neurons",
    "repro.obs",
    "repro.parallel",
    "repro.plotting",
    "repro.portfolio",
    "repro.problems",
    "repro.scale",
    "repro.sdp",
    "repro.serve",
    "repro.spectral",
    "repro.utils",
    "repro.workloads",
]


class TestImports:
    @pytest.mark.parametrize("module_name", ALL_MODULES)
    def test_module_imports(self, module_name):
        importlib.import_module(module_name)

    def test_all_public_packages_are_walked(self):
        # If a package is added but missing from PUBLIC_PACKAGES, the
        # docstring checks below would silently skip it.
        discovered = {m for m in ALL_MODULES if m.count(".") <= 1 and
                      hasattr(importlib.import_module(m), "__path__")} | {"repro"}
        assert discovered == set(PUBLIC_PACKAGES)


class TestDocstrings:
    @pytest.mark.parametrize("module_name", PUBLIC_PACKAGES)
    def test_package_docstring_non_trivial(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} has no docstring"
        # One-word placeholders don't help pydoc users.
        assert len(module.__doc__.strip()) >= 40, (
            f"{module_name} docstring is too thin: {module.__doc__!r}"
        )

    @pytest.mark.parametrize("module_name", ALL_MODULES)
    def test_every_module_has_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and module.__doc__.strip(), (
            f"{module_name} has no module docstring"
        )

    def test_exported_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name


class TestReadme:
    def test_readme_exists_and_mentions_quickstart_commands(self):
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        for command in ("repro run", "repro workloads", "repro solve",
                        "repro engine", "repro compare", "repro serve",
                        "pip install -e ."):
            assert command in readme, f"README lost the {command!r} quickstart"

    def test_readme_architecture_map_matches_source_tree(self):
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        for package in PUBLIC_PACKAGES:
            if package == "repro":
                continue
            assert f"`{package.split('.', 1)[1]}/`" in readme, (
                f"README architecture map is missing {package}"
            )

    def test_setup_py_uses_readme_as_long_description(self):
        setup_text = (REPO_ROOT / "setup.py").read_text(encoding="utf-8")
        assert "README.md" in setup_text
        assert "long_description" in setup_text


class TestCliHelp:
    """The README quickstart commands at least parse (``--help`` exits 0)."""

    @pytest.mark.parametrize("argv", [
        ["--help"],
        ["run", "--help"],
        ["workloads", "--help"],
        ["solve", "--help"],
        ["engine", "--help"],
        ["compare", "--help"],
        ["merge", "--help"],
        ["bench", "--help"],
        ["profile", "--help"],
        ["serve", "--help"],
    ])
    def test_help_exits_zero(self, argv, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 0
        assert "usage" in capsys.readouterr().out.lower()

    def test_run_help_documents_shard_flags(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["run", "--help"])
        out = capsys.readouterr().out
        for flag in ("--shards", "--checkpoint-dir", "--resume"):
            assert flag in out

    def test_compare_help_documents_flags(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["compare", "--help"])
        out = capsys.readouterr().out
        for flag in ("--solvers", "--suite", "--budget", "--save"):
            assert flag in out
