"""Tests for the LIF neuron population."""

import numpy as np
import pytest

from repro.devices.bernoulli import FairCoinPool
from repro.neurons.lif import LIFParameters, LIFPopulation
from repro.utils.validation import ValidationError


class TestLIFParameters:
    def test_defaults_valid(self):
        params = LIFParameters()
        assert params.time_constant == pytest.approx(10.0)
        assert 0.0 < params.leak_factor < 1.0

    def test_invalid_capacitance(self):
        with pytest.raises(ValidationError):
            LIFParameters(capacitance=0.0)

    def test_invalid_resistance(self):
        with pytest.raises(ValidationError):
            LIFParameters(resistance=-1.0)

    def test_dt_stability_check(self):
        with pytest.raises(ValidationError):
            LIFParameters(resistance=1.0, capacitance=1.0, dt=3.0)

    def test_nan_threshold_rejected(self):
        with pytest.raises(ValidationError):
            LIFParameters(threshold=float("nan"))


class TestConstruction:
    def test_basic(self, rng):
        weights = rng.standard_normal((5, 3))
        pop = LIFPopulation(weights)
        assert pop.n_neurons == 5
        assert pop.n_devices == 3

    def test_weights_copy(self, rng):
        weights = rng.standard_normal((4, 2))
        pop = LIFPopulation(weights)
        w = pop.weights
        w[0, 0] = 99.0
        assert pop.weights[0, 0] != 99.0

    def test_rejects_1d_weights(self):
        with pytest.raises(ValidationError):
            LIFPopulation(np.ones(4))

    def test_rejects_nan_weights(self):
        with pytest.raises(ValidationError):
            LIFPopulation(np.array([[1.0, np.nan]]))

    def test_initial_state_zero(self, rng):
        pop = LIFPopulation(rng.standard_normal((3, 2)))
        np.testing.assert_array_equal(pop.state.potentials, 0.0)


class TestDynamics:
    def test_step_shape(self, rng):
        pop = LIFPopulation(rng.standard_normal((6, 4)))
        spikes = pop.step(np.array([1, 0, 1, 0]))
        assert spikes.shape == (6,)
        assert spikes.dtype == bool

    def test_step_wrong_shape_raises(self, rng):
        pop = LIFPopulation(rng.standard_normal((6, 4)))
        with pytest.raises(ValidationError):
            pop.step(np.array([1, 0]))

    def test_run_spike_shape(self, rng):
        pop = LIFPopulation(rng.standard_normal((6, 4)))
        states = FairCoinPool(4, seed=1).sample(100)
        out = pop.run(states)
        assert out["spikes"].shape == (100, 6)

    def test_run_with_burn_in(self, rng):
        pop = LIFPopulation(rng.standard_normal((6, 4)))
        states = FairCoinPool(4, seed=2).sample(100)
        out = pop.run(states, burn_in=30)
        assert out["spikes"].shape == (70, 6)

    def test_run_record_potentials(self, rng):
        pop = LIFPopulation(rng.standard_normal((6, 4)))
        states = FairCoinPool(4, seed=3).sample(50)
        out = pop.run(states, record_potentials=True)
        assert out["potentials"].shape == (50, 6)

    def test_run_wrong_width_raises(self, rng):
        pop = LIFPopulation(rng.standard_normal((6, 4)))
        with pytest.raises(ValidationError):
            pop.run(np.zeros((10, 3), dtype=np.int8))

    def test_negative_burn_in_raises(self, rng):
        pop = LIFPopulation(rng.standard_normal((6, 4)))
        with pytest.raises(ValidationError):
            pop.run(np.zeros((10, 4), dtype=np.int8), burn_in=-1)

    def test_reset(self, rng):
        pop = LIFPopulation(rng.standard_normal((6, 4)))
        pop.run(FairCoinPool(4, seed=4).sample(50))
        pop.reset()
        np.testing.assert_array_equal(pop.state.potentials, 0.0)

    def test_reset_potential_after_spike(self):
        # Single neuron with huge positive weight so the first active input spikes it.
        params = LIFParameters(threshold=0.1, reset_potential=0.0, dt=0.5, input_offset=0.0)
        pop = LIFPopulation(np.array([[100.0]]), params=params)
        spikes = pop.step(np.array([1]))
        assert spikes[0]
        assert pop.state.potentials[0] == params.reset_potential

    def test_no_input_no_spikes(self):
        params = LIFParameters(input_offset=0.0)
        pop = LIFPopulation(np.ones((3, 2)), params=params)
        out = pop.run(np.zeros((20, 2), dtype=np.int8))
        assert not out["spikes"].any()

    def test_subthreshold_no_reset(self, rng):
        weights = rng.standard_normal((4, 3))
        pop = LIFPopulation(weights)
        trajectory = pop.run_subthreshold(FairCoinPool(3, seed=5).sample(200))
        assert trajectory.shape == (200, 4)
        # potentials may exceed the threshold since spiking is disabled
        assert np.isfinite(trajectory).all()

    def test_subthreshold_burn_in(self, rng):
        pop = LIFPopulation(rng.standard_normal((4, 3)))
        trajectory = pop.run_subthreshold(FairCoinPool(3, seed=6).sample(100), burn_in=40)
        assert trajectory.shape == (60, 4)


class TestStationaryStatistics:
    def test_centred_input_zero_mean(self):
        """With input_offset=0.5 and fair coins the membrane mean is near zero.

        The membrane is a strongly autocorrelated AR(1) process (correlation
        time tau/dt = 100 steps), so the empirical mean is compared against the
        per-neuron stationary standard deviation rather than an absolute bound,
        and contrasted with the clearly non-zero mean of the uncentred case.
        """
        rng = np.random.default_rng(0)
        weights = rng.standard_normal((10, 6))
        centred = LIFPopulation(weights)
        trajectory = centred.run_subthreshold(FairCoinPool(6, seed=7).sample(8000), burn_in=500)
        std = trajectory.std(axis=0)
        assert np.all(np.abs(trajectory.mean(axis=0)) < 0.75 * std)

        uncentred = LIFPopulation(weights, params=LIFParameters(input_offset=0.0))
        drifted = uncentred.run_subthreshold(FairCoinPool(6, seed=7).sample(4000), burn_in=500)
        # the uncentred means are dominated by the DC drive R * <I>
        assert np.abs(drifted.mean(axis=0)).max() > np.abs(trajectory.mean(axis=0)).max()

    def test_membrane_variance_scales_with_weights(self):
        rng = np.random.default_rng(1)
        base = rng.standard_normal((5, 4))
        pop1 = LIFPopulation(base)
        pop2 = LIFPopulation(2.0 * base)
        states = FairCoinPool(4, seed=8).sample(4000)
        var1 = pop1.run_subthreshold(states.copy(), burn_in=200).var(axis=0)
        var2 = pop2.run_subthreshold(states.copy(), burn_in=200).var(axis=0)
        ratio = var2 / np.clip(var1, 1e-12, None)
        # doubling weights quadruples the variance
        assert np.all(ratio > 2.5) and np.all(ratio < 6.0)

    def test_theoretical_covariance_shape(self, rng):
        pop = LIFPopulation(rng.standard_normal((7, 3)))
        cov = pop.theoretical_covariance()
        assert cov.shape == (7, 7)
        np.testing.assert_allclose(cov, cov.T)

    def test_theoretical_covariance_custom_device_cov(self, rng):
        pop = LIFPopulation(rng.standard_normal((4, 2)))
        with pytest.raises(ValidationError):
            pop.theoretical_covariance(np.eye(3))

    def test_empirical_correlation_matches_gram_structure(self):
        """Correlation of subthreshold membranes ~ correlation implied by W W^T."""
        rng = np.random.default_rng(3)
        n, r = 6, 4
        weights = rng.standard_normal((n, r))
        pop = LIFPopulation(weights)
        trajectory = pop.run_subthreshold(FairCoinPool(r, seed=9).sample(20000), burn_in=1000)
        empirical = np.corrcoef(trajectory, rowvar=False)
        gram = weights @ weights.T
        d = np.sqrt(np.diag(gram))
        theoretical = gram / np.outer(d, d)
        # The membrane potential is an AR(1)-filtered version of the same input mix,
        # so cross-neuron correlations match the Gram-matrix correlations.
        assert np.max(np.abs(empirical - theoretical)) < 0.12
