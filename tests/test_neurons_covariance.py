"""Tests for repro.neurons.covariance."""

import numpy as np
import pytest

from repro.neurons.covariance import (
    correlation_from_covariance,
    covariance_from_weights,
    empirical_covariance,
    theoretical_membrane_covariance,
)
from repro.utils.validation import ValidationError


class TestCovarianceFromWeights:
    def test_default_fair_coin(self, rng):
        W = rng.standard_normal((5, 3))
        cov = covariance_from_weights(W)
        np.testing.assert_allclose(cov, 0.25 * W @ W.T, atol=1e-12)

    def test_custom_device_covariance(self, rng):
        W = rng.standard_normal((4, 2))
        sigma = np.array([[0.3, 0.1], [0.1, 0.2]])
        cov = covariance_from_weights(W, sigma)
        np.testing.assert_allclose(cov, W @ sigma @ W.T, atol=1e-12)

    def test_gain(self, rng):
        W = rng.standard_normal((3, 3))
        np.testing.assert_allclose(
            covariance_from_weights(W, gain=4.0), 4.0 * covariance_from_weights(W)
        )

    def test_psd(self, rng):
        W = rng.standard_normal((8, 4))
        eigenvalues = np.linalg.eigvalsh(covariance_from_weights(W))
        assert eigenvalues.min() >= -1e-10

    def test_symmetric(self, rng):
        cov = covariance_from_weights(rng.standard_normal((6, 3)))
        np.testing.assert_allclose(cov, cov.T)

    def test_shape_validation(self):
        with pytest.raises(ValidationError):
            covariance_from_weights(np.ones(3))
        with pytest.raises(ValidationError):
            covariance_from_weights(np.ones((3, 2)), np.eye(3))

    def test_asymmetric_device_covariance_rejected(self):
        with pytest.raises(ValidationError):
            covariance_from_weights(np.ones((2, 2)), np.array([[1.0, 0.5], [0.0, 1.0]]))


class TestTheoreticalMembraneCovariance:
    def test_rc_scaling(self, rng):
        W = rng.standard_normal((4, 2))
        cov = theoretical_membrane_covariance(W, resistance=20.0, capacitance=2.0)
        np.testing.assert_allclose(cov, 10.0 * 0.25 * W @ W.T)

    def test_invalid_rc(self):
        with pytest.raises(ValidationError):
            theoretical_membrane_covariance(np.ones((2, 2)), resistance=0.0)


class TestEmpiricalCovariance:
    def test_matches_numpy(self, rng):
        samples = rng.standard_normal((500, 4))
        np.testing.assert_allclose(
            empirical_covariance(samples), np.cov(samples, rowvar=False)
        )

    def test_single_variable_2d(self, rng):
        cov = empirical_covariance(rng.standard_normal((100, 1)))
        assert cov.shape == (1, 1)

    def test_too_few_samples(self, rng):
        with pytest.raises(ValidationError):
            empirical_covariance(rng.standard_normal((1, 3)))

    def test_rejects_1d(self, rng):
        with pytest.raises(ValidationError):
            empirical_covariance(rng.standard_normal(10))


class TestCorrelationFromCovariance:
    def test_unit_diagonal(self, rng):
        W = rng.standard_normal((5, 3))
        corr = correlation_from_covariance(covariance_from_weights(W))
        np.testing.assert_allclose(np.diag(corr), 1.0)

    def test_bounded(self, rng):
        W = rng.standard_normal((6, 3))
        corr = correlation_from_covariance(covariance_from_weights(W))
        assert np.all(np.abs(corr) <= 1.0 + 1e-9)

    def test_zero_variance_row_handled(self):
        cov = np.array([[0.0, 0.0], [0.0, 2.0]])
        corr = correlation_from_covariance(cov)
        assert corr[0, 1] == 0.0
        assert corr[0, 0] == 1.0

    def test_rejects_asymmetric(self):
        with pytest.raises(ValidationError):
            correlation_from_covariance(np.array([[1.0, 0.5], [0.0, 1.0]]))
