"""Unit tests for the engine's building blocks.

Covers the backend registry (dense/sparse selection and extension), the
trial-seeded device sampler, the streaming best-cut tracker, the batched cut
evaluator, and the batched ``DevicePool.sample_batch`` API.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.config import LIFTrevisanConfig
from repro.circuits.lif_trevisan import LIFTrevisanCircuit
from repro.cuts.cut import BatchCutEvaluator, cut_weights_batch
from repro.devices.base import DevicePool
from repro.devices.bernoulli import BiasedCoinPool, FairCoinPool
from repro.devices.correlated import CorrelatedDevicePool
from repro.devices.drift import DriftingDevicePool
from repro.devices.telegraph import TelegraphNoisePool
from repro.engine import (
    BatchDeviceSampler,
    BestCutTracker,
    DenseBackend,
    EarlyStopConfig,
    SolveRequest,
    get_backend,
    list_backends,
    register_backend,
    select_backend,
    solve,
    trial_seed_sequences,
)
from repro.engine.backends import SPARSE_MIN_VERTICES, SparseBackend
from repro.graphs.generators import erdos_renyi
from repro.graphs.graph import Graph
from repro.utils.validation import ValidationError


class TestBackends:
    def test_registry_lists_builtins(self):
        assert {"dense", "sparse"} <= set(list_backends())

    def test_unknown_backend_raises(self):
        with pytest.raises(ValidationError):
            get_backend("no-such-backend")

    def test_register_custom_backend(self):
        class Doubling(DenseBackend):
            name = "doubling-test"

        register_backend("doubling-test", Doubling)
        try:
            backend = select_backend("doubling-test", np.eye(3))
            assert isinstance(backend, Doubling)
        finally:
            from repro.engine import backends as backends_module

            backends_module._REGISTRY.pop("doubling-test", None)

    def test_dense_matches_sequential_drive(self):
        rng = np.random.default_rng(0)
        weights = rng.standard_normal((6, 4))
        states = rng.integers(0, 2, size=(20, 4)).astype(np.int8)
        backend = DenseBackend(weights)
        expected = (states.astype(np.float64) - 0.5) @ weights.T
        assert np.array_equal(backend.drive(states, 0.5), expected)
        out = np.empty((20, 6))
        backend.drive(states, 0.5, out=out)
        assert np.array_equal(out, expected)

    def test_sparse_matches_dense_numerically(self):
        rng = np.random.default_rng(1)
        weights = np.where(rng.random((30, 30)) < 0.1, rng.standard_normal((30, 30)), 0.0)
        states = rng.integers(0, 2, size=(50, 30)).astype(np.int8)
        dense = DenseBackend(weights).drive(states, 0.5)
        sparse = SparseBackend(weights).drive(states, 0.5)
        np.testing.assert_allclose(sparse, dense, atol=1e-12)

    def test_auto_selects_dense_for_small_or_dense_graphs(self):
        graph = erdos_renyi(40, 0.3, seed=0)
        backend = select_backend(
            "auto", np.eye(40), graph=graph, sparse_weights=lambda: np.eye(40)
        )
        assert backend.name == "dense"

    def test_auto_selects_sparse_for_large_low_density_graphs(self):
        n = max(SPARSE_MIN_VERTICES, 150)
        graph = erdos_renyi(n, 0.01, seed=0)
        circuit = LIFTrevisanCircuit(
            graph, config=LIFTrevisanConfig(burn_in_steps=10, sample_interval=2)
        )
        plan = circuit.engine_plan()
        backend = select_backend(
            "auto", plan.weights, graph=graph, sparse_weights=plan.sparse_weights
        )
        assert backend.name == "sparse"

    def test_auto_never_selects_sparse_without_sparse_weights(self):
        graph = erdos_renyi(200, 0.01, seed=0)
        backend = select_backend("auto", np.eye(200), graph=graph)
        assert backend.name == "dense"

    def test_sparse_engine_run_matches_dense_cuts(self):
        """Sparse-backend cuts equal the dense (sequential-identical) cuts."""
        graph = erdos_renyi(150, 0.02, seed=3)
        circuit = LIFTrevisanCircuit(
            graph, config=LIFTrevisanConfig(burn_in_steps=10, sample_interval=3)
        )
        auto = solve(SolveRequest(circuit=circuit, n_trials=2, n_samples=6, seed=1))
        dense = solve(
            SolveRequest(circuit=circuit, n_trials=2, n_samples=6, seed=1, backend="dense")
        )
        assert auto.backend_name == "sparse"
        assert dense.backend_name == "dense"
        assert np.array_equal(auto.trajectories, dense.trajectories)


class TestDeprecatedShims:
    """select_backend/get_backend warn once and stay pinned to the new API."""

    @pytest.fixture(autouse=True)
    def _reset_warn_once(self):
        from repro.engine import backends as backends_module

        saved = set(backends_module._DEPRECATION_WARNED)
        backends_module._DEPRECATION_WARNED.clear()
        yield
        backends_module._DEPRECATION_WARNED.clear()
        backends_module._DEPRECATION_WARNED.update(saved)

    def test_select_backend_warns_once(self):
        import warnings

        with pytest.warns(DeprecationWarning, match="for_graph"):
            select_backend("dense", np.eye(4))
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            select_backend("dense", np.eye(4))
        assert not any(
            issubclass(w.category, DeprecationWarning) for w in record
        )

    def test_get_backend_warns(self):
        with pytest.warns(DeprecationWarning):
            get_backend("dense")

    def test_shim_output_pinned_to_for_graph(self):
        from repro.engine import WeightBackend

        graph = erdos_renyi(40, 0.3, seed=0)
        rng = np.random.default_rng(2)
        weights = rng.standard_normal((40, 40))
        states = rng.integers(0, 2, size=(12, 40)).astype(np.int8)
        with pytest.warns(DeprecationWarning):
            old = select_backend("dense", weights, graph=graph)
        new = WeightBackend.for_graph(graph, weights, policy="dense")
        assert type(old) is type(new)
        assert np.array_equal(old.drive(states, 0.5), new.drive(states, 0.5))


class TestSampler:
    def test_trial_seeds_match_seedstream_children(self):
        seeds = trial_seed_sequences(42, 3)
        for i, child in enumerate(seeds):
            expected = np.random.SeedSequence(entropy=42, spawn_key=(i,))
            assert child.entropy == expected.entropy
            assert child.spawn_key == expected.spawn_key

    def test_seed_sequence_root_extends_spawn_key(self):
        root = np.random.SeedSequence(entropy=7, spawn_key=(5,))
        seeds = trial_seed_sequences(root, 2)
        assert seeds[1].spawn_key == (5, 1)

    def test_none_seed_still_yields_independent_trials(self):
        seeds = trial_seed_sequences(None, 4)
        entropies = {s.entropy for s in seeds}
        assert len(entropies) == 1  # shared root entropy
        assert len({s.spawn_key for s in seeds}) == 4

    def test_invalid_seed_type_rejected(self):
        with pytest.raises(ValidationError):
            trial_seed_sequences("not-a-seed", 2)

    def test_sample_block_shapes_and_determinism(self):
        builder = lambda rng: FairCoinPool(5, seed=rng)
        sampler_a = BatchDeviceSampler(builder, trial_seed_sequences(3, 4))
        sampler_b = BatchDeviceSampler(builder, trial_seed_sequences(3, 4))
        block_a = sampler_a.sample_block([0, 1, 2, 3], 11)
        block_b = sampler_b.sample_block([0, 1, 2, 3], 11)
        assert block_a.shape == (4, 11, 5)
        assert block_a.dtype == np.int8
        assert np.array_equal(block_a, block_b)
        # Per-trial blocks are independent of which trials share the block.
        solo = BatchDeviceSampler(builder, trial_seed_sequences(3, 4))
        assert np.array_equal(solo.sample_block([2], 11)[0], block_a[2])

    def test_aux_generator_requires_sampling_first(self):
        sampler = BatchDeviceSampler(
            lambda rng: FairCoinPool(2, seed=rng), trial_seed_sequences(0, 2)
        )
        with pytest.raises(ValidationError):
            sampler.aux_generator(0)
        sampler.sample_block([0], 3)
        assert sampler.aux_generator(0) is not None


class TestTracker:
    def test_no_stop_without_config(self):
        tracker = BestCutTracker(None, ceiling=10.0)
        for r in range(100):
            assert tracker.update(r, np.array([10.0])) is False
        assert not tracker.stopped

    def test_plateau_stops_after_patience(self):
        tracker = BestCutTracker(EarlyStopConfig(patience=3, min_rounds=2))
        stopped_at = None
        for r in range(50):
            if tracker.update(r, np.array([5.0])):
                stopped_at = r
                break
        assert stopped_at is not None
        assert tracker.stop_round == stopped_at
        # First update improves (from -inf); then 3 flat rounds trip patience.
        assert stopped_at == 3

    def test_improvement_resets_patience(self):
        tracker = BestCutTracker(EarlyStopConfig(patience=3, min_rounds=1))
        weights = [1.0, 1.0, 2.0, 2.0, 4.0, 4.0, 4.0, 4.0]
        stops = [tracker.update(r, np.array([w])) for r, w in enumerate(weights)]
        assert stops == [False] * 7 + [True]

    def test_ceiling_stops_immediately(self):
        tracker = BestCutTracker(
            EarlyStopConfig(patience=100, min_rounds=100), ceiling=6.0
        )
        assert tracker.update(0, np.array([6.0])) is True

    def test_best_weight_tracks_maximum_across_blocks(self):
        tracker = BestCutTracker(EarlyStopConfig(patience=2, min_rounds=1))
        tracker.update(0, np.array([3.0, 7.0]))
        tracker.start_block()
        tracker.update(0, np.array([5.0]))
        assert tracker.best_weight == 7.0


class TestBatchCutEvaluator:
    def test_matches_cut_weights_batch_unweighted(self, medium_er_graph, rng):
        assignments = rng.choice([-1, 1], size=(13, medium_er_graph.n_vertices))
        assignments = assignments.astype(np.int8)
        evaluator = BatchCutEvaluator(medium_er_graph)
        assert np.array_equal(
            evaluator.weights(assignments),
            cut_weights_batch(medium_er_graph, assignments),
        )

    def test_matches_cut_weights_batch_weighted(self, weighted_graph, rng):
        assignments = rng.choice([-1, 1], size=(9, 4)).astype(np.int8)
        evaluator = BatchCutEvaluator(weighted_graph)
        assert np.array_equal(
            evaluator.weights(assignments),
            cut_weights_batch(weighted_graph, assignments),
        )

    def test_edgeless_graph(self, empty_graph, rng):
        assignments = rng.choice([-1, 1], size=(4, 5)).astype(np.int8)
        assert np.array_equal(
            BatchCutEvaluator(empty_graph).weights(assignments), np.zeros(4)
        )


class TestSampleBatch:
    POOLS = [
        lambda: FairCoinPool(6, seed=0),
        lambda: BiasedCoinPool(0.7, n_devices=6, seed=0),
        lambda: TelegraphNoisePool(6, switch_up=0.2, seed=0),
        lambda: DriftingDevicePool(6, seed=0),
        lambda: CorrelatedDevicePool(6, 0.3, seed=0),
    ]

    @pytest.mark.parametrize("make_pool", POOLS, ids=[
        "fair", "biased", "telegraph", "drifting", "correlated",
    ])
    def test_shape_dtype_and_binary_values(self, make_pool):
        pool = make_pool()
        batch = pool.sample_batch(3, 7, rng=123)
        assert batch.shape == (3, 7, 6)
        assert batch.dtype == np.int8
        assert set(np.unique(batch)) <= {0, 1}

    @pytest.mark.parametrize("make_pool", POOLS, ids=[
        "fair", "biased", "telegraph", "drifting", "correlated",
    ])
    def test_reproducible_given_rng(self, make_pool):
        a = make_pool().sample_batch(2, 9, rng=7)
        b = make_pool().sample_batch(2, 9, rng=7)
        assert np.array_equal(a, b)

    def test_zero_trials_and_zero_steps(self):
        pool = FairCoinPool(4, seed=0)
        assert pool.sample_batch(0, 5, rng=1).shape == (0, 5, 4)
        assert pool.sample_batch(3, 0, rng=1).shape == (3, 0, 4)

    def test_negative_trials_rejected(self):
        with pytest.raises(ValidationError):
            FairCoinPool(4, seed=0).sample_batch(-1, 5)

    def test_statistics_match_expected_mean(self):
        pool = BiasedCoinPool(0.8, n_devices=4, seed=0)
        batch = pool.sample_batch(20, 500, rng=5)
        np.testing.assert_allclose(batch.mean(axis=(0, 1)), 0.8, atol=0.02)

    def test_telegraph_trials_are_independent_replicas(self):
        """Batched trials start fresh; the pool's own state is untouched."""
        pool = TelegraphNoisePool(3, switch_up=0.05, seed=0)
        state_before = pool._state.copy()
        pool.sample_batch(4, 50, rng=9)
        assert np.array_equal(pool._state, state_before)

    def test_default_loop_fallback_for_custom_pools(self):
        class ConstantPool(DevicePool):
            def sample(self, n_steps):
                n_steps = self._check_steps(n_steps)
                return np.ones((n_steps, self.n_devices), dtype=np.int8)

            def expected_mean(self):
                return np.ones(self.n_devices)

        batch = ConstantPool(3).sample_batch(2, 4)
        assert batch.shape == (2, 4, 3)
        assert np.all(batch == 1)
        # An explicit rng cannot be honoured without an _rng slot: loud error
        # beats silently sampling from the wrong stream.
        with pytest.raises(ValidationError):
            ConstantPool(3).sample_batch(2, 4, rng=7)

    def test_default_fallback_honours_rng_for_rng_idiom_pools(self):
        """The base fallback substitutes rng into the standard _rng slot."""
        from repro.utils.rng import as_generator

        class CustomCoinPool(DevicePool):
            def __init__(self, n_devices, seed=None):
                super().__init__(n_devices)
                self._rng = as_generator(seed)

            def sample(self, n_steps):
                n_steps = self._check_steps(n_steps)
                return self._rng.integers(
                    0, 2, size=(n_steps, self.n_devices), dtype=np.int8
                )

            def expected_mean(self):
                return np.full(self.n_devices, 0.5)

        pool = CustomCoinPool(4, seed=0)
        state_probe = pool._rng
        a = CustomCoinPool(4, seed=0).sample_batch(3, 8, rng=42)
        b = CustomCoinPool(4, seed=999).sample_batch(3, 8, rng=42)
        assert np.array_equal(a, b)  # rng, not the pool's seed, decides
        assert pool._rng is state_probe  # original stream restored untouched
        c = CustomCoinPool(4, seed=0).sample_batch(3, 8, rng=43)
        assert not np.array_equal(a, c)
