"""Tests for the ASCII plotting helpers."""

import numpy as np
import pytest

from repro.plotting.ascii import ascii_histogram, ascii_line_plot, render_curves
from repro.utils.validation import ValidationError


class TestAsciiLinePlot:
    def test_basic_render(self):
        x = np.arange(1, 11)
        text = ascii_line_plot(x, {"a": x * 1.0, "b": x * 2.0}, width=30, height=8, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        # 8 data rows + axis + labels + legend
        assert len(lines) == 1 + 8 + 3
        assert "a" in lines[-1] and "b" in lines[-1]

    def test_symbols_present(self):
        x = [1, 2, 3]
        text = ascii_line_plot(x, {"one": [1, 2, 3]}, width=20, height=5)
        assert "o" in text  # first series symbol

    def test_log_x(self):
        x = [1, 10, 100, 1000]
        text = ascii_line_plot(x, {"curve": [0.1, 0.5, 0.8, 1.0]}, log_x=True)
        assert "(log x)" in text

    def test_log_x_rejects_nonpositive(self):
        with pytest.raises(ValidationError):
            ascii_line_plot([0, 1], {"c": [1, 2]}, log_x=True)

    def test_flat_series_handled(self):
        text = ascii_line_plot([1, 2, 3], {"flat": [5.0, 5.0, 5.0]})
        assert "flat" in text

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValidationError):
            ascii_line_plot([1, 2], {"a": [1, 2], "b": [1, 2, 3]})

    def test_x_length_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            ascii_line_plot([1, 2, 3], {"a": [1, 2]})

    def test_empty_series_rejected(self):
        with pytest.raises(ValidationError):
            ascii_line_plot([1], {})

    def test_bad_dimensions_rejected(self):
        with pytest.raises(ValidationError):
            ascii_line_plot([1, 2], {"a": [1, 2]}, width=5, height=2)

    def test_custom_y_range(self):
        text = ascii_line_plot([1, 2], {"a": [0.2, 0.8]}, y_range=(0.0, 1.0))
        assert "1.000" in text

    def test_invalid_y_range(self):
        with pytest.raises(ValidationError):
            ascii_line_plot([1, 2], {"a": [1, 2]}, y_range=(1.0, 1.0))


class TestAsciiHistogram:
    def test_basic(self):
        values = np.concatenate([np.zeros(50), np.ones(10)])
        text = ascii_histogram(values, n_bins=2, width=20, title="hist")
        lines = text.splitlines()
        assert lines[0] == "hist"
        assert len(lines) == 3
        assert "#" in text

    def test_counts_shown(self):
        text = ascii_histogram([1.0, 1.0, 2.0], n_bins=2)
        assert "2" in text and "1" in text

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            ascii_histogram([])

    def test_rejects_bad_bins(self):
        with pytest.raises(ValidationError):
            ascii_histogram([1.0], n_bins=0)


class TestRenderCurves:
    def test_paper_style_curves(self):
        counts = np.array([1, 10, 100, 1000])
        curves = {
            "lif_gw": [0.98, 0.99, 1.0, 1.0],
            "lif_tr": [0.6, 0.7, 0.8, 0.9],
            "random": [0.65, 0.75, 0.8, 0.82],
        }
        text = render_curves(counts, curves, title="G(50, 0.1)")
        assert "G(50, 0.1)" in text
        assert "lif_gw" in text and "lif_tr" in text
        assert "(log x)" in text
