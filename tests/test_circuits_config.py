"""Tests for circuit configuration dataclasses and result containers."""

import numpy as np
import pytest

from repro.circuits.base import CircuitResult, SampleTrajectory
from repro.circuits.config import LIFGWConfig, LIFTrevisanConfig
from repro.cuts.cut import Cut
from repro.neurons.lif import LIFParameters
from repro.utils.validation import ValidationError


class TestLIFGWConfig:
    def test_defaults(self):
        config = LIFGWConfig()
        assert config.rank == 4  # the paper's fixed rank
        assert config.readout in ("membrane", "spike")

    def test_invalid_rank(self):
        with pytest.raises(ValidationError):
            LIFGWConfig(rank=0)

    def test_invalid_weight_scale(self):
        with pytest.raises(ValidationError):
            LIFGWConfig(weight_scale=0.0)

    def test_invalid_sample_interval(self):
        with pytest.raises(ValidationError):
            LIFGWConfig(sample_interval=0)

    def test_invalid_burn_in(self):
        with pytest.raises(ValidationError):
            LIFGWConfig(burn_in_steps=-1)

    def test_invalid_readout(self):
        with pytest.raises(ValidationError):
            LIFGWConfig(readout="voltage")

    def test_invalid_sdp_tolerance(self):
        with pytest.raises(ValidationError):
            LIFGWConfig(sdp_tolerance=0.0)

    def test_custom_lif_params(self):
        config = LIFGWConfig(lif=LIFParameters(resistance=5.0))
        assert config.lif.resistance == 5.0

    def test_frozen(self):
        config = LIFGWConfig()
        with pytest.raises(AttributeError):
            config.rank = 8  # type: ignore[misc]


class TestLIFTrevisanConfig:
    def test_defaults(self):
        config = LIFTrevisanConfig()
        assert config.learning_rate > 0

    def test_invalid_learning_rate(self):
        with pytest.raises(ValidationError):
            LIFTrevisanConfig(learning_rate=0.0)

    def test_invalid_decay(self):
        with pytest.raises(ValidationError):
            LIFTrevisanConfig(learning_rate_decay=-0.5)

    def test_invalid_sample_interval(self):
        with pytest.raises(ValidationError):
            LIFTrevisanConfig(sample_interval=0)

    def test_invalid_weight_scale(self):
        with pytest.raises(ValidationError):
            LIFTrevisanConfig(weight_scale=-1.0)


class TestSampleTrajectory:
    def test_running_best(self):
        trajectory = SampleTrajectory(weights=np.array([1.0, 3.0, 2.0, 5.0]))
        np.testing.assert_array_equal(trajectory.running_best(), [1, 3, 3, 5])
        assert trajectory.best_weight() == 5.0
        assert trajectory.n_samples == 4

    def test_best_at(self):
        trajectory = SampleTrajectory(weights=np.array([1.0, 3.0, 2.0, 5.0]))
        np.testing.assert_array_equal(trajectory.best_at(np.array([1, 2, 4])), [1, 3, 5])

    def test_best_at_out_of_range(self):
        trajectory = SampleTrajectory(weights=np.array([1.0]))
        with pytest.raises(ValidationError):
            trajectory.best_at(np.array([2]))

    def test_empty(self):
        trajectory = SampleTrajectory(weights=np.zeros(0))
        assert trajectory.best_weight() == 0.0
        assert trajectory.running_best().shape == (0,)

    def test_rejects_2d(self):
        with pytest.raises(ValidationError):
            SampleTrajectory(weights=np.zeros((2, 2)))


class TestCircuitResult:
    def test_best_weight_property(self, triangle):
        cut = Cut.from_assignment(triangle, np.array([1, 1, -1]))
        result = CircuitResult(
            graph_name="triangle",
            best_cut=cut,
            trajectory=SampleTrajectory(weights=np.array([2.0])),
            n_samples=1,
            n_steps=10,
        )
        assert result.best_weight == 2.0
        assert result.metadata == {}
