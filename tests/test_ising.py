"""Tests for the Ising formulation and annealing baselines."""

import numpy as np
import pytest

from repro.cuts.cut import cut_weight
from repro.cuts.exact import exact_maxcut_value
from repro.graphs.generators import complete_bipartite, complete_graph, erdos_renyi
from repro.graphs.graph import Graph
from repro.ising.annealing import AnnealingSchedule, SimulatedAnnealer, simulated_annealing_maxcut
from repro.ising.model import IsingModel, cut_weight_from_spins, ising_energy, maxcut_to_ising
from repro.ising.tempering import parallel_tempering
from repro.utils.validation import ValidationError


class TestIsingModel:
    def test_maxcut_mapping_consistency(self, small_er_graph, rng):
        """cut(v) = offset - H(v) must hold for arbitrary spin configurations."""
        model = maxcut_to_ising(small_er_graph)
        for _ in range(20):
            spins = np.where(rng.random(small_er_graph.n_vertices) < 0.5, 1, -1).astype(np.int8)
            assert cut_weight_from_spins(model, spins) == pytest.approx(
                cut_weight(small_er_graph, spins)
            )

    def test_energy_of_uniform_spins(self, triangle):
        model = maxcut_to_ising(triangle)
        # all spins aligned: H = sum J_ij = 3 * 0.5 = 1.5, cut = 1.5 - 1.5 = 0
        spins = np.ones(3, dtype=np.int8)
        assert ising_energy(model, spins) == pytest.approx(1.5)
        assert cut_weight_from_spins(model, spins) == pytest.approx(0.0)

    def test_cut_weight_round_trip_on_weighted_graph(self, rng):
        """The cut identity holds edge-for-edge on non-unit weights too."""
        graph = Graph(
            8,
            [
                (0, 1, 0.25), (1, 2, 3.5), (2, 3, 1.75), (3, 4, 0.5),
                (4, 5, 2.25), (5, 6, 0.125), (6, 7, 4.0), (0, 7, 1.5),
                (1, 6, 2.5), (2, 5, 0.75),
            ],
            name="weighted",
        )
        model = maxcut_to_ising(graph)
        assert model.offset == pytest.approx(graph.total_weight / 2.0)
        for _ in range(25):
            spins = np.where(rng.random(8) < 0.5, 1, -1).astype(np.int8)
            assert cut_weight_from_spins(model, spins) == pytest.approx(
                cut_weight(graph, spins)
            )

    def test_cut_weight_from_spins_rejects_nonzero_fields(self, triangle):
        """A field-carrying model would silently drop the field term."""
        base = maxcut_to_ising(triangle)
        model = IsingModel(
            n_spins=base.n_spins,
            edges=base.edges,
            couplings=base.couplings,
            fields=np.array([0.0, 1.0, 0.0]),
            offset=base.offset,
        )
        spins = np.ones(3, dtype=np.int8)
        with pytest.raises(ValidationError, match="zero external fields"):
            cut_weight_from_spins(model, spins)
        # The zero-field model stays valid, and the compiler handles fields.
        assert cut_weight_from_spins(base, spins) == pytest.approx(0.0)

    def test_coupling_matrix_symmetric(self, small_er_graph):
        J = maxcut_to_ising(small_er_graph).coupling_matrix()
        np.testing.assert_allclose(J, J.T)
        assert np.all(np.diag(J) == 0)

    def test_local_fields_match_flip_energy(self, small_er_graph, rng):
        """delta E of flipping spin i equals -2 v_i local_i."""
        model = maxcut_to_ising(small_er_graph)
        spins = np.where(rng.random(small_er_graph.n_vertices) < 0.5, 1, -1).astype(np.int8)
        local = model.local_fields(spins)
        base_energy = ising_energy(model, spins)
        for i in range(0, small_er_graph.n_vertices, 3):
            flipped = spins.copy()
            flipped[i] = -flipped[i]
            delta = ising_energy(model, flipped) - base_energy
            assert delta == pytest.approx(-2.0 * spins[i] * local[i])

    def test_validation(self):
        with pytest.raises(ValidationError):
            IsingModel(n_spins=2, edges=np.array([[0, 5]]), couplings=np.array([1.0]), fields=np.zeros(2))
        with pytest.raises(ValidationError):
            IsingModel(n_spins=2, edges=np.array([[0, 1]]), couplings=np.array([1.0]), fields=np.zeros(3))

    def test_empty_graph_model(self, empty_graph):
        model = maxcut_to_ising(empty_graph)
        assert model.n_couplings == 0
        spins = np.ones(5, dtype=np.int8)
        assert cut_weight_from_spins(model, spins) == 0.0


class TestAnnealingSchedule:
    def test_temperature_ladder(self):
        schedule = AnnealingSchedule(t_start=2.0, t_end=0.5, n_sweeps=4)
        temps = schedule.temperatures()
        assert temps.shape == (4,)
        assert temps[0] == pytest.approx(2.0)
        assert temps[-1] == pytest.approx(0.5)
        assert np.all(np.diff(temps) < 0)

    def test_single_sweep(self):
        assert AnnealingSchedule(n_sweeps=1).temperatures().shape == (1,)

    def test_validation(self):
        with pytest.raises(ValidationError):
            AnnealingSchedule(t_start=0.0)
        with pytest.raises(ValidationError):
            AnnealingSchedule(t_start=1.0, t_end=2.0)
        with pytest.raises(ValidationError):
            AnnealingSchedule(n_sweeps=0)


class TestSimulatedAnnealing:
    def test_finds_optimum_on_small_graphs(self, small_er_graph):
        opt = exact_maxcut_value(small_er_graph)
        cut = simulated_annealing_maxcut(
            small_er_graph, AnnealingSchedule(n_sweeps=300), n_restarts=3, seed=0
        )
        assert cut.weight >= 0.95 * opt

    def test_bipartite_exact(self):
        graph = complete_bipartite(6, 5)
        cut = simulated_annealing_maxcut(graph, seed=1)
        assert cut.weight == graph.total_weight

    def test_complete_graph_exact(self):
        graph = complete_graph(9)
        cut = simulated_annealing_maxcut(graph, AnnealingSchedule(n_sweeps=300), seed=2)
        assert cut.weight == 20.0  # floor(9/2)*ceil(9/2)

    def test_annealer_energy_decreases_overall(self, medium_er_graph):
        model = maxcut_to_ising(medium_er_graph)
        annealer = SimulatedAnnealer(model, seed=3)
        rng = np.random.default_rng(4)
        start = (2 * rng.integers(0, 2, size=model.n_spins) - 1).astype(np.int8)
        start_energy = ising_energy(model, start)
        spins, energy = annealer.anneal(AnnealingSchedule(n_sweeps=200), initial_spins=start)
        assert energy <= start_energy
        assert energy == pytest.approx(ising_energy(model, spins))

    def test_reproducible(self, small_er_graph):
        a = simulated_annealing_maxcut(small_er_graph, seed=5)
        b = simulated_annealing_maxcut(small_er_graph, seed=5)
        assert a.weight == b.weight

    def test_invalid_restarts(self, triangle):
        with pytest.raises(ValidationError):
            simulated_annealing_maxcut(triangle, n_restarts=0)

    def test_empty_graph(self, empty_graph):
        assert simulated_annealing_maxcut(empty_graph, seed=6).weight == 0.0

    def test_wrong_initial_spins(self, triangle):
        model = maxcut_to_ising(triangle)
        with pytest.raises(ValidationError):
            SimulatedAnnealer(model, seed=7).anneal(initial_spins=np.ones(5, dtype=np.int8))

    def test_beats_random_baseline(self):
        graph = erdos_renyi(40, 0.3, seed=8)
        from repro.algorithms.random_baseline import random_baseline

        sa = simulated_annealing_maxcut(graph, AnnealingSchedule(n_sweeps=150), seed=9)
        random_best, _ = random_baseline(graph, 150, seed=10)
        assert sa.weight >= random_best.weight


class TestParallelTempering:
    def test_finds_optimum_on_small_graph(self, small_er_graph):
        opt = exact_maxcut_value(small_er_graph)
        result = parallel_tempering(small_er_graph, n_replicas=4, n_sweeps=150, seed=0)
        assert result.best_cut.weight >= 0.95 * opt

    def test_result_fields(self, small_er_graph):
        result = parallel_tempering(small_er_graph, n_replicas=4, n_sweeps=50, seed=1)
        assert result.temperatures.shape == (4,)
        assert 0.0 <= result.swap_acceptance_rate <= 1.0
        assert len(result.energy_history) == 50
        # best energy history is monotone non-increasing
        assert all(b <= a + 1e-9 for a, b in zip(result.energy_history, result.energy_history[1:]))

    def test_at_least_as_good_as_plain_annealing_typically(self):
        graph = erdos_renyi(30, 0.3, seed=2)
        pt = parallel_tempering(graph, n_replicas=6, n_sweeps=120, seed=3)
        sa = simulated_annealing_maxcut(graph, AnnealingSchedule(n_sweeps=120), seed=3)
        assert pt.best_cut.weight >= 0.95 * sa.weight

    def test_validation(self, triangle):
        with pytest.raises(ValidationError):
            parallel_tempering(triangle, n_replicas=1)
        with pytest.raises(ValidationError):
            parallel_tempering(triangle, t_min=2.0, t_max=1.0)
        with pytest.raises(ValidationError):
            parallel_tempering(triangle, n_sweeps=0)

    def test_empty_graph(self, empty_graph):
        result = parallel_tempering(empty_graph, n_replicas=3, n_sweeps=5, seed=4)
        assert result.best_cut.weight == 0.0
