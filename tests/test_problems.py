"""Tests for the problem compiler (``repro.problems``).

The load-bearing contract: every gadget reduction is exact **per
assignment** — lifting any cut of the compiled graph yields a native
solution whose objective is the lifter's affine function of the cut weight —
and therefore exact at the optimum: brute-forcing the native problem and
exactly solving the compiled MAXCUT instance (``cuts/exact.py``) agree, for
random instances of every problem class.
"""

import numpy as np
import pytest

from repro.algorithms.max2sat import Clause, Max2SatInstance, random_max2sat_instance
from repro.algorithms.maxdicut import DirectedGraph, random_digraph
from repro.algorithms.registry import get_spec, get_solver, solvers_for_problem
from repro.cuts.cut import cut_weight
from repro.cuts.exact import exact_maxcut
from repro.graphs.generators import erdos_renyi
from repro.ising.model import IsingModel
from repro.problems import (
    Certificate,
    CertificateError,
    CompiledGraph,
    IsingProblem,
    MaxCutProblem,
    MaxDiCutProblem,
    MaxTwoSatProblem,
    ProblemSource,
    Qubo,
    brute_force,
    build_problem_suite,
    compile_to_maxcut,
    compiled_problem_graphs,
    ising_to_qubo,
    list_problem_suites,
    load_problem,
    problem_from_dict,
    qubo_to_ising,
    random_problem,
    save_problem,
    verify_certificate,
)
from repro.utils.rng import paired_seed
from repro.utils.validation import ValidationError


def _random_instance(kind, seed, n=9):
    """A small random instance of *kind* (n kept brute-forceable)."""
    rng = np.random.default_rng(seed)
    if kind == "qubo":
        return Qubo(rng.normal(size=(n, n)))
    if kind == "ising":
        iu, ju = np.triu_indices(n, k=1)
        mask = rng.random(iu.shape[0]) < 0.5
        return IsingProblem(IsingModel(
            n_spins=n,
            edges=np.stack([iu[mask], ju[mask]], axis=1),
            couplings=rng.normal(size=int(mask.sum())),
            fields=rng.normal(size=n) * 0.5,
            offset=float(rng.normal()),
        ))
    if kind == "maxcut":
        return MaxCutProblem(erdos_renyi(n, 0.5, seed=int(seed)))
    if kind == "maxdicut":
        return MaxDiCutProblem(
            random_digraph(n, 0.3, seed=int(seed), weighted=True)
        )
    assert kind == "max2sat"
    return MaxTwoSatProblem(
        random_max2sat_instance(n, 3 * n, seed=int(seed), weighted=True)
    )


ALL_KINDS = ("qubo", "ising", "maxcut", "maxdicut", "max2sat")


class TestValuePreservation:
    """Reduce → solve exactly → lift: native optimum is preserved, per kind."""

    @pytest.mark.parametrize("kind", ALL_KINDS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_exact_solve_lifts_to_native_optimum(self, kind, seed):
        problem = _random_instance(kind, seed)
        graph, lifter = compile_to_maxcut(problem, seed=seed)
        assert isinstance(graph, CompiledGraph)
        assert graph.problem is problem and graph.lifter is lifter

        best_cut = exact_maxcut(graph)
        lifted = lifter.lift(best_cut.assignment)
        lifted_value = problem.objective(lifted)
        # The affine identity at the optimum...
        assert lifted_value == pytest.approx(
            lifter.native_value(best_cut.weight), abs=1e-9
        )
        # ...and agreement with the native brute-force optimum.
        _, native_best = brute_force(problem)
        assert lifted_value == pytest.approx(native_best, abs=1e-9)

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_affine_identity_holds_for_every_assignment(self, kind):
        problem = _random_instance(kind, seed=7, n=8)
        graph, lifter = compile_to_maxcut(problem, seed=7)
        rng = np.random.default_rng(11)
        for _ in range(30):
            assignment = (2 * rng.integers(0, 2, graph.n_vertices) - 1).astype(np.int8)
            native = problem.objective(lifter.lift(assignment))
            assert native == pytest.approx(
                lifter.native_value(cut_weight(graph, assignment)), abs=1e-9
            )
            # embed(lift(.)) preserves the cut weight (sign-symmetry aside).
            round_trip = lifter.embed(lifter.lift(assignment))
            assert cut_weight(graph, round_trip) == pytest.approx(
                cut_weight(graph, assignment), abs=1e-9
            )

    def test_unit_and_degenerate_clauses(self):
        """Unit clauses, duplicated literals, and tautologies compile exactly."""
        instance = Max2SatInstance(3, (
            Clause(1, 2, 1.5),     # regular
            Clause(-2, 0, 2.0),    # unit
            Clause(3, 3, 0.5),     # duplicated literal == unit
            Clause(1, -1, 4.0),    # tautology: constant
        ))
        problem = MaxTwoSatProblem(instance)
        graph, lifter = compile_to_maxcut(problem, n_probes=16, seed=0)
        _, native_best = brute_force(problem)
        best = exact_maxcut(graph)
        assert problem.objective(lifter.lift(best.assignment)) == pytest.approx(
            native_best
        )

    def test_fieldless_ising_compiles_without_ancilla(self):
        model = IsingModel(
            n_spins=4,
            edges=np.array([[0, 1], [1, 2], [2, 3]]),
            couplings=np.array([1.0, -2.0, 0.5]),
            fields=np.zeros(4),
            offset=0.25,
        )
        graph, lifter = compile_to_maxcut(IsingProblem(model))
        assert graph.n_vertices == 4  # no ancilla spin
        spins = np.array([1, -1, 1, 1], dtype=np.int8)
        assert np.array_equal(lifter.lift(spins), spins)

    def test_field_carrying_ising_uses_ancilla_gadget(self):
        problem = _random_instance("ising", seed=3, n=6)
        assert problem.has_fields
        graph, lifter = compile_to_maxcut(problem)
        assert graph.n_vertices == 7  # ancilla spin prepended
        # Flipping the whole assignment leaves the lifted solution's
        # objective unchanged (the gadget's global sign symmetry).
        rng = np.random.default_rng(0)
        assignment = (2 * rng.integers(0, 2, 7) - 1).astype(np.int8)
        assert problem.objective(lifter.lift(assignment)) == pytest.approx(
            problem.objective(lifter.lift(-assignment))
        )


class TestQuboIsingMaps:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_qubo_to_ising_exact_per_assignment(self, seed):
        qubo = _random_instance("qubo", seed)
        ising = qubo_to_ising(qubo)
        rng = np.random.default_rng(seed + 100)
        for _ in range(25):
            bits = rng.integers(0, 2, qubo.n_variables).astype(np.int8)
            spins = (2 * bits - 1).astype(np.int8)
            assert qubo.objective(bits) == pytest.approx(
                ising.objective(spins), abs=1e-9
            )

    def test_ising_to_qubo_accumulates_duplicate_couplings(self):
        # IsingModel permits repeated (u, v) pairs; their couplings must
        # accumulate exactly as ising_energy does.
        model = IsingModel(
            n_spins=2,
            edges=np.array([[0, 1], [0, 1]]),
            couplings=np.array([1.0, 1.0]),
            fields=np.zeros(2),
            offset=0.0,
        )
        ising = IsingProblem(model)
        qubo, constant = ising_to_qubo(ising)
        for bits in ([0, 0], [0, 1], [1, 0], [1, 1]):
            bits = np.asarray(bits, dtype=np.int8)
            spins = (2 * bits - 1).astype(np.int8)
            assert ising.objective(spins) == pytest.approx(
                qubo.objective(bits) + constant
            )

    @pytest.mark.parametrize("seed", [0, 1])
    def test_ising_to_qubo_round_trip(self, seed):
        ising = _random_instance("ising", seed, n=7)
        qubo, constant = ising_to_qubo(ising)
        rng = np.random.default_rng(seed + 200)
        for _ in range(25):
            bits = rng.integers(0, 2, 7).astype(np.int8)
            spins = (2 * bits - 1).astype(np.int8)
            assert ising.objective(spins) == pytest.approx(
                qubo.objective(bits) + constant, abs=1e-9
            )


class TestCertificates:
    def test_compile_certifies_by_default(self):
        problem = _random_instance("qubo", 0)
        graph, lifter = compile_to_maxcut(problem)
        certificate = verify_certificate(problem, graph, lifter, n_probes=5)
        assert isinstance(certificate, Certificate)
        assert certificate.kind == "qubo"
        assert certificate.n_probes == 5
        assert certificate.max_abs_error < 1e-8

    def test_tampered_lifter_fails_certification(self):
        import dataclasses

        problem = _random_instance("maxdicut", 1)
        graph, lifter = compile_to_maxcut(problem)
        broken = dataclasses.replace(lifter, value_offset=lifter.value_offset + 1.0)
        with pytest.raises(CertificateError, match="value preservation"):
            verify_certificate(problem, graph, broken)

    def test_certificate_records_solved_assignment(self):
        problem = _random_instance("max2sat", 2)
        graph, lifter = compile_to_maxcut(problem)
        best = exact_maxcut(graph)
        certificate = verify_certificate(
            problem, graph, lifter, assignment=best.assignment
        )
        assert certificate.cut_weight == pytest.approx(best.weight)
        assert certificate.native_value == pytest.approx(
            lifter.native_value(best.weight)
        )

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValidationError, match="expects a Problem"):
            compile_to_maxcut(object())


class TestSerialization:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_round_trip_preserves_objective(self, kind, tmp_path):
        problem = _random_instance(kind, 4, n=7)
        path = tmp_path / f"{kind}.json"
        save_problem(path, problem)
        loaded = load_problem(path)
        assert loaded.kind == problem.kind
        assert loaded.n_variables == problem.n_variables
        rng = np.random.default_rng(0)
        for _ in range(10):
            bits = rng.integers(0, 2, 7).astype(np.int8)
            assert loaded.objective(
                loaded.solution_from_bits(bits)
            ) == pytest.approx(problem.objective(problem.solution_from_bits(bits)))

    def test_unknown_kind_raises(self):
        with pytest.raises(ValidationError, match="unknown problem kind"):
            problem_from_dict({"kind": "sudoku"})


class TestSuitesAndSources:
    def test_builtin_suites_registered_beside_graph_suites(self):
        from repro.arena.suite import list_suites

        for key in ("qubo-small", "ising-small", "dicut-small", "2sat-small"):
            assert key in list_problem_suites()
            assert key in list_suites()  # the compiled twin

    def test_suites_are_seed_deterministic(self):
        for key in list_problem_suites():
            first = compiled_problem_graphs(key, seed=5)
            second = compiled_problem_graphs(key, seed=5)
            other = compiled_problem_graphs(key, seed=6)
            assert [g.name for g in first] == [g.name for g in second]
            for a, b in zip(first, second):
                assert np.array_equal(a.edges, b.edges)
                assert np.array_equal(a.edge_weights, b.edge_weights)
            assert any(
                not np.array_equal(a.edge_weights, c.edge_weights)
                or not np.array_equal(a.edges, c.edges)
                for a, c in zip(first, other)
            )

    def test_problem_source_builds_compiled_graphs(self):
        source = ProblemSource.from_suite("qubo-small")
        assert source.problem_kind == "qubo"
        problems = source.build_problems(0)
        graphs = source.build(0)
        assert len(problems) == len(graphs) == 3
        assert all(isinstance(g, CompiledGraph) for g in graphs)
        # Identical to the registered graph-suite twin's build.
        twin = compiled_problem_graphs("qubo-small", seed=0)
        assert [g.name for g in graphs] == [g.name for g in twin]

    def test_problem_source_round_trips_through_dict(self):
        source = ProblemSource.from_suite("dicut-small")
        rebuilt = ProblemSource.from_dict(source.to_dict())
        assert rebuilt == source
        # The GraphSource entry point dispatches on the marker.
        from repro.workloads.spec import GraphSource

        assert GraphSource.from_dict(source.to_dict()) == source

    def test_explicit_problem_source(self):
        problems = [_random_instance("max2sat", s, n=6) for s in (0, 1)]
        source = ProblemSource.explicit(problems)
        assert source.problem_kind == "max2sat"
        assert len(source.build(0)) == 2
        with pytest.raises(ValidationError, match="not persistable"):
            ProblemSource.from_dict(source.to_dict())

    def test_random_problem_matches_paired_convention(self):
        a = random_problem("dicut", seed=3, n_variables=8)
        b = random_problem("maxdicut", seed=3, n_variables=8)
        assert np.array_equal(a.digraph.arcs, b.digraph.arcs)
        assert np.array_equal(a.digraph.arc_weights, b.digraph.arc_weights)
        c = random_problem("dicut", seed=4, n_variables=8)
        assert not (
            a.digraph.n_arcs == c.digraph.n_arcs
            and np.array_equal(a.digraph.arcs, c.digraph.arcs)
            and np.array_equal(a.digraph.arc_weights, c.digraph.arc_weights)
        )


class TestGenerators:
    def test_random_digraph_deterministic_under_paired_seed(self):
        seed = paired_seed(0, 2_000_003, 3, 0)
        a = random_digraph(10, 0.3, seed=seed, weighted=True)
        b = random_digraph(10, 0.3, seed=paired_seed(0, 2_000_003, 3, 0), weighted=True)
        assert np.array_equal(a.arcs, b.arcs)
        assert np.array_equal(a.arc_weights, b.arc_weights)

    def test_random_digraph_validation(self):
        with pytest.raises(ValidationError):
            random_digraph(0, 0.5)
        with pytest.raises(ValidationError):
            random_digraph(5, 1.5)

    def test_random_max2sat_weighted(self):
        instance = random_max2sat_instance(6, 12, seed=0, weighted=True)
        weights = [c.weight for c in instance.clauses]
        assert all(0.5 <= w < 1.5 for w in weights)
        assert len(set(weights)) > 1


class TestNativeSolvers:
    def test_registered_with_problem_classes(self):
        assert solvers_for_problem("maxdicut") == ["maxdicut_gw"]
        assert solvers_for_problem("max2sat") == ["max2sat_gw"]
        assert solvers_for_problem("ising") == ["annealing", "tempering"]
        assert get_spec("ising.annealing").key == "annealing"
        assert get_spec("ising.tempering").key == "tempering"

    @pytest.mark.parametrize("kind,solver", [
        ("maxdicut", "maxdicut_gw"), ("max2sat", "max2sat_gw"),
    ])
    def test_native_solver_scores_in_cut_currency(self, kind, solver):
        problem = _random_instance(kind, 5, n=8)
        graph, lifter = compile_to_maxcut(problem)
        cut = get_solver(solver)(graph, n_samples=24, seed=0)
        # The embedded cut's weight is the native objective mapped through
        # the lifter — the shared leaderboard currency.
        native = problem.objective(lifter.lift(cut.assignment))
        assert cut.weight == pytest.approx(lifter.cut_value(native))

    def test_native_solver_rejects_plain_graphs(self):
        graph = erdos_renyi(8, 0.5, seed=0)
        with pytest.raises(ValidationError, match="plain graph"):
            get_solver("maxdicut_gw")(graph, n_samples=4, seed=0)

    def test_native_solver_rejects_wrong_class(self):
        graph, _ = compile_to_maxcut(_random_instance("qubo", 0, n=6))
        with pytest.raises(ValidationError, match="compiled from a 'qubo'"):
            get_solver("max2sat_gw")(graph, n_samples=4, seed=0)
