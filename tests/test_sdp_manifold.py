"""Tests for repro.sdp.manifold."""

import numpy as np
import pytest

from repro.sdp.manifold import (
    is_on_manifold,
    project_rows_to_sphere,
    random_oblique_point,
    retract,
    tangent_project,
)
from repro.utils.validation import ValidationError


class TestProjection:
    def test_unit_rows(self, rng):
        W = project_rows_to_sphere(rng.standard_normal((10, 4)))
        np.testing.assert_allclose(np.linalg.norm(W, axis=1), 1.0)

    def test_zero_row_handled(self):
        W = project_rows_to_sphere(np.zeros((3, 4)))
        np.testing.assert_allclose(np.linalg.norm(W, axis=1), 1.0)
        np.testing.assert_array_equal(W[:, 0], 1.0)

    def test_already_normalised_unchanged(self, rng):
        W = project_rows_to_sphere(rng.standard_normal((5, 3)))
        np.testing.assert_allclose(project_rows_to_sphere(W), W)

    def test_rejects_1d(self):
        with pytest.raises(ValidationError):
            project_rows_to_sphere(np.ones(4))

    def test_is_on_manifold(self, rng):
        W = random_oblique_point(6, 3, seed=rng)
        assert is_on_manifold(W)
        assert not is_on_manifold(2.0 * W)


class TestTangentProject:
    def test_orthogonal_to_rows(self, rng):
        W = random_oblique_point(8, 4, seed=1)
        G = rng.standard_normal((8, 4))
        T = tangent_project(W, G)
        np.testing.assert_allclose(np.sum(T * W, axis=1), 0.0, atol=1e-12)

    def test_idempotent(self, rng):
        W = random_oblique_point(8, 4, seed=2)
        G = rng.standard_normal((8, 4))
        T = tangent_project(W, G)
        np.testing.assert_allclose(tangent_project(W, T), T, atol=1e-12)

    def test_tangent_vector_unchanged(self, rng):
        W = random_oblique_point(5, 3, seed=3)
        G = rng.standard_normal((5, 3))
        T = tangent_project(W, G)
        np.testing.assert_allclose(tangent_project(W, T), T)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValidationError):
            tangent_project(np.ones((3, 2)), np.ones((2, 3)))


class TestRetract:
    def test_stays_on_manifold(self, rng):
        W = random_oblique_point(10, 4, seed=4)
        step = 0.3 * rng.standard_normal((10, 4))
        assert is_on_manifold(retract(W, step))

    def test_zero_step_identity(self):
        W = random_oblique_point(6, 3, seed=5)
        np.testing.assert_allclose(retract(W, np.zeros_like(W)), W)


class TestRandomPoint:
    def test_shape_and_norms(self):
        W = random_oblique_point(7, 5, seed=0)
        assert W.shape == (7, 5)
        assert is_on_manifold(W)

    def test_reproducible(self):
        np.testing.assert_allclose(
            random_oblique_point(4, 3, seed=9), random_oblique_point(4, 3, seed=9)
        )

    def test_invalid_rank(self):
        with pytest.raises(ValidationError):
            random_oblique_point(4, 0)
