"""Tests for experiment configuration objects."""

import pytest

from repro.experiments.config import (
    PAPER_FIGURE3_PROBABILITIES,
    PAPER_FIGURE3_SIZES,
    PAPER_SAMPLE_BUDGET,
    AblationConfig,
    Figure3Config,
    Figure4Config,
    Table1Config,
)
from repro.utils.validation import ValidationError


class TestPaperConstants:
    def test_figure3_grid_matches_paper(self):
        assert PAPER_FIGURE3_SIZES == (50, 100, 200, 350, 500)
        assert PAPER_FIGURE3_PROBABILITIES == (0.1, 0.25, 0.5, 0.75)

    def test_sample_budget_is_2_to_20(self):
        assert PAPER_SAMPLE_BUDGET == 2**20


class TestFigure3Config:
    def test_defaults(self):
        config = Figure3Config()
        assert config.n_graphs_per_cell == 10  # the paper's value
        assert config.n_samples >= 1

    def test_rejects_empty_grid(self):
        with pytest.raises(ValidationError):
            Figure3Config(sizes=())

    def test_rejects_tiny_graphs(self):
        with pytest.raises(ValidationError):
            Figure3Config(sizes=(1,))

    def test_rejects_bad_probability(self):
        with pytest.raises(ValidationError):
            Figure3Config(probabilities=(0.0,))

    def test_rejects_zero_samples(self):
        with pytest.raises(ValidationError):
            Figure3Config(n_samples=0)

    def test_rejects_zero_graphs(self):
        with pytest.raises(ValidationError):
            Figure3Config(n_graphs_per_cell=0)


class TestFigure4Config:
    def test_defaults(self):
        assert Figure4Config().n_samples >= 1

    def test_rejects_zero_solver_samples(self):
        with pytest.raises(ValidationError):
            Figure4Config(n_solver_samples=0)


class TestTable1Config:
    def test_defaults(self):
        assert Table1Config().n_samples >= 1

    def test_rejects_zero_random_samples(self):
        with pytest.raises(ValidationError):
            Table1Config(n_random_samples=0)


class TestAblationConfig:
    def test_defaults(self):
        config = AblationConfig()
        assert config.n_graphs >= 1

    def test_rejects_invalid(self):
        with pytest.raises(ValidationError):
            AblationConfig(n_vertices=1)
        with pytest.raises(ValidationError):
            AblationConfig(edge_probability=0.0)
        with pytest.raises(ValidationError):
            AblationConfig(n_graphs=0)
