"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.cuts.cut import Cut, cut_weight, cut_weights_batch, running_best_cuts
from repro.cuts.local_search import greedy_improve
from repro.graphs.generators import erdos_renyi
from repro.graphs.graph import Graph
from repro.neurons.covariance import covariance_from_weights
from repro.neurons.plasticity import anti_hebbian_oja_update, oja_update
from repro.sdp.manifold import project_rows_to_sphere, retract, tangent_project
from repro.analysis.convergence import running_best, sample_points_log_spaced

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

@st.composite
def small_graphs(draw):
    """Random small graphs (3-12 vertices) with arbitrary edge subsets."""
    n = draw(st.integers(min_value=3, max_value=12))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(st.lists(st.sampled_from(possible), unique=True, max_size=len(possible)))
    return Graph(n, edges)


@st.composite
def graph_with_assignment(draw):
    graph = draw(small_graphs())
    bits = draw(
        st.lists(st.sampled_from([-1, 1]), min_size=graph.n_vertices, max_size=graph.n_vertices)
    )
    return graph, np.array(bits, dtype=np.int8)


finite_floats = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False)


# ---------------------------------------------------------------------------
# Cut invariants
# ---------------------------------------------------------------------------

class TestCutProperties:
    @SETTINGS
    @given(graph_with_assignment())
    def test_cut_weight_bounds(self, data):
        graph, assignment = data
        weight = cut_weight(graph, assignment)
        assert 0.0 <= weight <= graph.total_weight

    @SETTINGS
    @given(graph_with_assignment())
    def test_complement_invariance(self, data):
        graph, assignment = data
        assert cut_weight(graph, assignment) == cut_weight(graph, -assignment)

    @SETTINGS
    @given(graph_with_assignment())
    def test_batch_matches_single(self, data):
        graph, assignment = data
        batch = cut_weights_batch(graph, assignment[None, :])
        assert batch[0] == cut_weight(graph, assignment)

    @SETTINGS
    @given(graph_with_assignment())
    def test_local_search_never_decreases(self, data):
        graph, assignment = data
        improved = greedy_improve(graph, assignment)
        assert improved.weight >= cut_weight(graph, assignment) - 1e-9

    @SETTINGS
    @given(graph_with_assignment())
    def test_all_same_label_is_zero_cut(self, data):
        graph, _ = data
        assert cut_weight(graph, np.ones(graph.n_vertices, dtype=np.int8)) == 0.0

    @SETTINGS
    @given(st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=50))
    def test_running_best_monotone_and_dominating(self, weights):
        arr = np.array(weights)
        best = running_best_cuts(arr)
        assert np.all(np.diff(best) >= 0)
        assert np.all(best >= arr)
        assert best[-1] == arr.max()


# ---------------------------------------------------------------------------
# Graph invariants
# ---------------------------------------------------------------------------

class TestGraphProperties:
    @SETTINGS
    @given(small_graphs())
    def test_adjacency_symmetric_nonnegative_diagonal_zero(self, graph):
        A = graph.adjacency()
        assert np.allclose(A, A.T)
        assert np.all(np.diag(A) == 0)

    @SETTINGS
    @given(small_graphs())
    def test_degree_sum_is_twice_edges(self, graph):
        assert graph.degrees().sum() == 2 * graph.n_edges

    @SETTINGS
    @given(small_graphs())
    def test_normalized_adjacency_spectrum_in_unit_interval(self, graph):
        eigenvalues = np.linalg.eigvalsh(graph.normalized_adjacency())
        assert eigenvalues.min() >= -1.0 - 1e-8
        assert eigenvalues.max() <= 1.0 + 1e-8

    @SETTINGS
    @given(small_graphs())
    def test_laplacian_psd(self, graph):
        eigenvalues = np.linalg.eigvalsh(graph.laplacian())
        assert eigenvalues.min() >= -1e-8

    @SETTINGS
    @given(st.integers(min_value=2, max_value=20), st.floats(min_value=0, max_value=1), st.integers(0, 2**16))
    def test_erdos_renyi_edge_bounds(self, n, p, seed):
        graph = erdos_renyi(n, p, seed=seed)
        assert 0 <= graph.n_edges <= n * (n - 1) // 2


# ---------------------------------------------------------------------------
# Oblique manifold invariants
# ---------------------------------------------------------------------------

class TestManifoldProperties:
    @SETTINGS
    @given(hnp.arrays(np.float64, (6, 3), elements=finite_floats))
    def test_projection_gives_unit_rows(self, W):
        P = project_rows_to_sphere(W)
        np.testing.assert_allclose(np.linalg.norm(P, axis=1), 1.0, atol=1e-9)

    @SETTINGS
    @given(
        hnp.arrays(np.float64, (5, 3), elements=finite_floats),
        hnp.arrays(np.float64, (5, 3), elements=finite_floats),
    )
    def test_tangent_projection_orthogonal(self, W, G):
        W = project_rows_to_sphere(W)
        T = tangent_project(W, G)
        np.testing.assert_allclose(np.sum(T * W, axis=1), 0.0, atol=1e-8)

    @SETTINGS
    @given(
        hnp.arrays(np.float64, (5, 3), elements=finite_floats),
        hnp.arrays(np.float64, (5, 3), elements=finite_floats),
    )
    def test_retraction_stays_on_manifold(self, W, step):
        W = project_rows_to_sphere(W)
        R = retract(W, step)
        np.testing.assert_allclose(np.linalg.norm(R, axis=1), 1.0, atol=1e-9)


# ---------------------------------------------------------------------------
# Covariance / plasticity invariants
# ---------------------------------------------------------------------------

class TestNeuronProperties:
    @SETTINGS
    @given(hnp.arrays(np.float64, (6, 4), elements=finite_floats))
    def test_membrane_covariance_psd_symmetric(self, W):
        cov = covariance_from_weights(W)
        assert np.allclose(cov, cov.T)
        assert np.linalg.eigvalsh(cov).min() >= -1e-8

    @SETTINGS
    @given(
        hnp.arrays(np.float64, (5,), elements=finite_floats),
        hnp.arrays(np.float64, (5,), elements=finite_floats),
        st.floats(min_value=1e-4, max_value=0.1),
    )
    def test_oja_update_finite(self, w, x, eta):
        out = oja_update(w, x, eta)
        assert np.all(np.isfinite(out))

    @SETTINGS
    @given(
        hnp.arrays(np.float64, (5,), elements=finite_floats),
        hnp.arrays(np.float64, (5,), elements=finite_floats),
        st.floats(min_value=1e-4, max_value=0.1),
    )
    def test_anti_hebbian_update_finite(self, w, x, eta):
        out = anti_hebbian_oja_update(w, x, eta)
        assert np.all(np.isfinite(out))

    @SETTINGS
    @given(
        hnp.arrays(
            np.float64,
            (4,),
            elements=st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
        )
    )
    def test_anti_hebbian_zero_input_pushes_norm_toward_one(self, w):
        # With x = 0 the update is eta * (1 - ||w||^2) w, so for small learning
        # rates (where the discrete step cannot overshoot) the norm moves toward 1.
        norm_before = np.linalg.norm(w)
        out = anti_hebbian_oja_update(w, np.zeros(4), 0.01)
        norm_after = np.linalg.norm(out)
        if norm_before > 1.0:
            assert norm_after <= norm_before + 1e-12
        elif norm_before > 0:
            assert norm_after >= norm_before - 1e-12


# ---------------------------------------------------------------------------
# Analysis invariants
# ---------------------------------------------------------------------------

class TestAnalysisProperties:
    @SETTINGS
    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=200))
    def test_running_best_idempotent(self, values):
        arr = np.array(values)
        once = running_best(arr)
        twice = running_best(once)
        np.testing.assert_array_equal(once, twice)

    @SETTINGS
    @given(st.integers(min_value=1, max_value=100_000), st.integers(min_value=1, max_value=50))
    def test_sample_points_valid(self, n_samples, n_points):
        points = sample_points_log_spaced(n_samples, n_points)
        assert points[0] >= 1
        assert points[-1] == n_samples
        assert np.all(np.diff(points) > 0)


# ---------------------------------------------------------------------------
# Portfolio meta-solver invariants
# ---------------------------------------------------------------------------

class TestPortfolioProperties:
    @SETTINGS
    @given(small_graphs(), st.integers(min_value=0, max_value=2**31 - 1))
    def test_features_deterministic_and_relabel_invariant(self, graph, perm_seed):
        from repro.portfolio import InstanceFeatures, extract_features
        import dataclasses

        perm = np.random.default_rng(perm_seed).permutation(graph.n_vertices)
        relabeled = Graph(
            graph.n_vertices,
            [(int(perm[u]), int(perm[v])) for u, v in graph.edges],
        )
        first = extract_features(graph)
        assert first == extract_features(graph)
        second = extract_features(relabeled)
        for field in dataclasses.fields(InstanceFeatures):
            a, b = getattr(first, field.name), getattr(second, field.name)
            if isinstance(a, float):
                assert abs(a - b) <= 1e-8, field.name
            else:
                assert a == b, field.name

    @SETTINGS
    @given(st.integers(min_value=1, max_value=16), st.integers(min_value=1, max_value=64))
    def test_rung_schedule_bounds(self, n_solvers, n_trials):
        from repro.portfolio import rung_schedule

        targets = rung_schedule(n_solvers, n_trials)
        assert targets and targets[-1] == n_trials
        assert all(1 <= t <= n_trials for t in targets)
        assert all(a < b for a, b in zip(targets, targets[1:]))
        # A full-race worst case never exceeds K * T total trials.
        assert n_solvers * targets[-1] <= n_solvers * n_trials

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(min_value=1, max_value=4),
           st.integers(min_value=0, max_value=100))
    def test_race_respects_trial_budget(self, n_trials, seed):
        from repro.portfolio import race
        from repro.workloads.spec import Budget

        graph = erdos_renyi(10, 0.4, seed=5)
        result = race(graph, ["local_search", "trevisan"],
                      budget=Budget(n_trials=n_trials, n_samples=8),
                      seed=seed, use_engine=False)
        assert all(t <= n_trials for t in result.trials_used.values())
        assert result.total_trials <= 2 * n_trials
        assert result.trials_used["trevisan"] <= 1  # deterministic: one trial

    @SETTINGS
    @given(rows=st.lists(
        st.tuples(st.sampled_from(["a", "b", "c"]),
                  st.integers(min_value=2, max_value=400),
                  st.floats(min_value=0.0, max_value=1.0,
                            allow_nan=False)),
        min_size=1, max_size=20))
    def test_model_round_trips_through_json(self, rows, tmp_path_factory):
        from repro.portfolio import fit_from_records, load_model, save_model

        records = [
            {"solver": solver, "n_vertices": n, "cut_ratio": ratio,
             "n_edges": min(3 * n, n * (n - 1) // 2)}
            for solver, n, ratio in rows
        ]
        model = fit_from_records(records, sources=["synthetic"])
        path = tmp_path_factory.mktemp("portfolio") / "model.json"
        save_model(path, model)
        assert load_model(path) == model
