"""End-to-end integration tests crossing module boundaries.

These validate the paper's qualitative claims on small instances where exact
maximum cuts are available:

* LIF-GW tracks the software Goemans-Williamson solver,
* LIF-TR improves with samples and lands between random and the solver,
* the membrane-covariance motif really does reproduce the SDP Gram matrix,
* the whole pipeline is deterministic given seeds.
"""

import numpy as np
import pytest

from repro.algorithms.goemans_williamson import goemans_williamson
from repro.algorithms.random_baseline import random_baseline
from repro.circuits.config import LIFGWConfig, LIFTrevisanConfig
from repro.circuits.lif_gw import LIFGWCircuit
from repro.circuits.lif_trevisan import LIFTrevisanCircuit
from repro.cuts.exact import exact_maxcut_value
from repro.devices.bernoulli import FairCoinPool
from repro.graphs.generators import erdos_renyi, planted_partition
from repro.graphs.repository import load_empirical_graph
from repro.neurons.covariance import empirical_covariance
from repro.neurons.lif import LIFPopulation
from repro.sdp.burer_monteiro import solve_maxcut_sdp
from repro.spectral.trevisan import trevisan_simple_spectral


class TestCircuitVsClassicalOrdering:
    """The headline ordering of the paper's figures on a small fixed graph."""

    @pytest.fixture(scope="class")
    def results(self):
        graph = erdos_renyi(22, 0.4, seed=101)
        opt = exact_maxcut_value(graph)
        solver = goemans_williamson(graph, n_samples=300, seed=1)
        lif_gw = LIFGWCircuit(graph, seed=2).sample_cuts(600, seed=3)
        lif_tr = LIFTrevisanCircuit(graph).sample_cuts(800, seed=4)
        random_best, random_weights = random_baseline(graph, 600, seed=5)
        return {
            "graph": graph,
            "opt": opt,
            "solver": solver,
            "lif_gw": lif_gw,
            "lif_tr": lif_tr,
            "random_best": random_best,
            "random_weights": random_weights,
        }

    def test_everything_below_optimum(self, results):
        for key in ("lif_gw", "lif_tr"):
            assert results[key].best_weight <= results["opt"] + 1e-9
        assert results["solver"].best_weight <= results["opt"] + 1e-9

    def test_lif_gw_matches_solver(self, results):
        assert results["lif_gw"].best_weight >= 0.95 * results["solver"].best_weight

    def test_lif_tr_beats_mean_random(self, results):
        assert results["lif_tr"].best_weight > results["random_weights"].mean()

    def test_solver_close_to_optimum(self, results):
        assert results["solver"].best_weight >= 0.878 * results["opt"]

    def test_circuits_beat_random_expectation_half(self, results):
        half = results["graph"].total_weight / 2.0
        assert results["lif_gw"].best_weight > half
        assert results["lif_tr"].best_weight > half


class TestCovarianceMotif:
    """Paper §III.C: the LIF population turns device randomness into membranes
    whose covariance is proportional to the Gram matrix of the weights."""

    def test_membrane_covariance_proportional_to_gram(self):
        graph = erdos_renyi(10, 0.5, seed=7)
        sdp = solve_maxcut_sdp(graph, rank=4, seed=8)
        W = sdp.vectors
        population = LIFPopulation(W)
        states = FairCoinPool(4, seed=9).sample(60000)
        membranes = population.run_subthreshold(states, burn_in=2000)
        empirical = empirical_covariance(membranes)
        gram = W @ W.T
        # compare correlation structure (overall scale depends on R, C, dt)
        d_emp = np.sqrt(np.diag(empirical))
        d_gram = np.sqrt(np.diag(gram))
        corr_emp = empirical / np.outer(d_emp, d_emp)
        corr_gram = gram / np.outer(d_gram, d_gram)
        assert np.max(np.abs(corr_emp - corr_gram)) < 0.15

    def test_gw_rounding_from_membranes_matches_direct_rounding(self):
        """Cuts sampled by the circuit have statistics close to software rounding."""
        graph = erdos_renyi(20, 0.4, seed=10)
        sdp = solve_maxcut_sdp(graph, rank=4, seed=11)
        circuit = LIFGWCircuit(graph, sdp_result=sdp, seed=12)
        circuit_result = circuit.sample_cuts(800, seed=13)
        software = goemans_williamson(graph, n_samples=800, seed=14, rank=4, sdp_result=sdp)
        circuit_mean = circuit_result.trajectory.weights.mean()
        software_mean = software.sample_weights.mean()
        assert abs(circuit_mean - software_mean) < 0.1 * software_mean


class TestTrevisanCircuitConvergence:
    def test_learning_improves_relative_cut(self):
        """The LIF-TR running best should rise appreciably from its first samples
        toward the software spectral value (the Figure 3 orange curve shape)."""
        graph = erdos_renyi(50, 0.2, seed=15)
        result = LIFTrevisanCircuit(graph).sample_cuts(600, seed=16)
        running = result.trajectory.running_best()
        software = trevisan_simple_spectral(graph).cut.weight
        assert running[-1] >= running[4]
        assert running[-1] >= 0.85 * software

    def test_planted_partition_recovered_approximately(self):
        """On a graph with a strong planted bisection the circuit should find
        most of the planted cut."""
        graph = planted_partition(30, 0.05, 0.9, seed=17)
        planted_cut = sum(
            1 for (u, v) in graph.edges if (u < 15) != (v < 15)
        )
        # LIF-TR converges slowly (the paper's central observation); 2000
        # samples are enough for this 30-vertex near-bipartite instance.
        result = LIFTrevisanCircuit(graph).sample_cuts(2000, seed=18)
        assert result.best_weight >= 0.9 * planted_cut


class TestEmpiricalGraphPipeline:
    def test_hamming6_2_runs_through_both_circuits(self):
        graph = load_empirical_graph("hamming6-2")
        fast_gw = LIFGWConfig(burn_in_steps=30, sample_interval=3, sdp_max_iterations=500)
        fast_tr = LIFTrevisanConfig(burn_in_steps=30, sample_interval=3)
        gw = LIFGWCircuit(graph, config=fast_gw, seed=19).sample_cuts(100, seed=20)
        tr = LIFTrevisanCircuit(graph, config=fast_tr).sample_cuts(100, seed=21)
        random_best, _ = random_baseline(graph, 100, seed=22)
        # hamming6-2 total weight 1824, published best cut 992
        assert gw.best_weight <= 992
        assert gw.best_weight > 0.9 * random_best.weight
        assert tr.best_weight > 0


class TestDeterminism:
    def test_full_pipeline_reproducible(self):
        graph = erdos_renyi(18, 0.4, seed=23)
        a = LIFGWCircuit(graph, seed=24).sample_cuts(64, seed=25)
        b = LIFGWCircuit(graph, seed=24).sample_cuts(64, seed=25)
        np.testing.assert_array_equal(a.trajectory.weights, b.trajectory.weights)
        np.testing.assert_array_equal(a.best_cut.assignment, b.best_cut.assignment)

    def test_different_seeds_give_different_samples(self):
        graph = erdos_renyi(18, 0.4, seed=26)
        circuit = LIFGWCircuit(graph, seed=27)
        a = circuit.sample_cuts(64, seed=28).trajectory.weights
        b = circuit.sample_cuts(64, seed=29).trajectory.weights
        assert not np.array_equal(a, b)
