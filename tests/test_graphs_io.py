"""Tests for repro.graphs.io."""

import pytest

from repro.graphs.generators import erdos_renyi
from repro.graphs.graph import Graph
from repro.graphs.io import (
    read_edge_list,
    read_matrix_market,
    write_edge_list,
    write_matrix_market,
)
from repro.utils.validation import ValidationError


class TestEdgeList:
    def test_round_trip(self, tmp_path, weighted_graph):
        path = tmp_path / "graph.txt"
        write_edge_list(weighted_graph, path)
        back = read_edge_list(path)
        assert back.n_vertices == weighted_graph.n_vertices
        assert back.n_edges == weighted_graph.n_edges
        assert back.total_weight == pytest.approx(weighted_graph.total_weight)

    def test_round_trip_one_indexed(self, tmp_path):
        g = erdos_renyi(15, 0.4, seed=3)
        path = tmp_path / "graph1.txt"
        write_edge_list(g, path, one_indexed=True)
        back = read_edge_list(path, one_indexed=True)
        assert back == g

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# comment\n\n% other comment\n0 1\n1 2\n")
        g = read_edge_list(path)
        assert g.n_edges == 2
        assert g.n_vertices == 3

    def test_self_loops_dropped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 0\n0 1\n")
        assert read_edge_list(path).n_edges == 1

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 2 3 4\n")
        with pytest.raises(ValidationError):
            read_edge_list(path)

    def test_non_numeric_raises(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("a b\n")
        with pytest.raises(ValidationError):
            read_edge_list(path)

    def test_negative_vertex_raises(self, tmp_path):
        # a 0 label shifted down by one_indexed goes negative
        path = tmp_path / "g.txt"
        path.write_text("0 1\n")
        with pytest.raises(ValidationError):
            read_edge_list(path, one_indexed=True)

    def test_name_defaults_to_filename(self, tmp_path):
        path = tmp_path / "mygraph.txt"
        path.write_text("0 1\n")
        assert read_edge_list(path).name == "mygraph"


class TestMatrixMarket:
    def test_round_trip_unweighted(self, tmp_path):
        g = erdos_renyi(12, 0.4, seed=8)
        path = tmp_path / "g.mtx"
        write_matrix_market(g, path)
        back = read_matrix_market(path)
        assert back == g

    def test_round_trip_weighted(self, tmp_path, weighted_graph):
        path = tmp_path / "w.mtx"
        write_matrix_market(weighted_graph, path)
        back = read_matrix_market(path)
        assert back.total_weight == pytest.approx(weighted_graph.total_weight)

    def test_pattern_header_written_for_unweighted(self, tmp_path):
        g = Graph(3, [(0, 1)])
        path = tmp_path / "p.mtx"
        write_matrix_market(g, path)
        assert "pattern" in path.read_text().splitlines()[0]

    def test_missing_header_raises(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("1 1 0\n")
        with pytest.raises(ValidationError):
            read_matrix_market(path)

    def test_unsupported_field_raises(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("%%MatrixMarket matrix coordinate complex symmetric\n2 2 1\n1 2 1 0\n")
        with pytest.raises(ValidationError):
            read_matrix_market(path)

    def test_rectangular_raises(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("%%MatrixMarket matrix coordinate real symmetric\n2 3 1\n1 2 1.0\n")
        with pytest.raises(ValidationError):
            read_matrix_market(path)

    def test_general_symmetry_accepted(self, tmp_path):
        path = tmp_path / "gen.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "3 3 2\n1 2 1.0\n2 1 1.0\n"
        )
        g = read_matrix_market(path)
        assert g.n_edges == 1

    def test_self_loops_ignored(self, tmp_path):
        path = tmp_path / "loop.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern symmetric\n2 2 2\n1 1\n2 1\n"
        )
        assert read_matrix_market(path).n_edges == 1
