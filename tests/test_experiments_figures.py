"""Tests for the Figure 3 / Figure 4 / Table I experiment harness.

These use drastically reduced sample budgets so the whole module runs in a
few tens of seconds; the benchmarks exercise larger budgets.
"""

import numpy as np
import pytest

from repro.circuits.config import LIFGWConfig, LIFTrevisanConfig
from repro.experiments.config import Figure3Config, Figure4Config, Table1Config
from repro.experiments.figure3 import METHODS, run_figure3, run_figure3_cell
from repro.experiments.figure4 import run_figure4, run_figure4_panel
from repro.experiments.table1 import run_table1, run_table1_row
from repro.graphs.generators import erdos_renyi
from repro.parallel.pool import ParallelConfig


FAST_GW = LIFGWConfig(burn_in_steps=20, sample_interval=3, sdp_max_iterations=300)
FAST_TR = LIFTrevisanConfig(burn_in_steps=20, sample_interval=3)


@pytest.fixture(scope="module")
def figure3_cell():
    config = Figure3Config(
        sizes=(20,),
        probabilities=(0.3,),
        n_graphs_per_cell=2,
        n_samples=64,
        n_solver_samples=32,
        seed=1,
        lif_gw=FAST_GW,
        lif_tr=FAST_TR,
    )
    return run_figure3_cell(20, 0.3, config=config, parallel=ParallelConfig(n_workers=1))


class TestFigure3:
    def test_cell_structure(self, figure3_cell):
        cell = figure3_cell
        assert set(cell.curves.keys()) == set(METHODS)
        for method in METHODS:
            assert cell.curves[method].shape == cell.sample_counts.shape
            assert cell.sems[method].shape == cell.sample_counts.shape
        assert cell.solver_best_weights.shape == (2,)

    def test_curves_monotone_nondecreasing(self, figure3_cell):
        for method in METHODS:
            values = figure3_cell.curves[method]
            assert np.all(np.diff(values) >= -1e-9)

    def test_solver_curve_reaches_one(self, figure3_cell):
        # by construction the solver's final relative value is 1.0
        assert figure3_cell.curves["solver"][-1] == pytest.approx(1.0)

    def test_lif_gw_tracks_solver(self, figure3_cell):
        assert figure3_cell.curves["lif_gw"][-1] >= 0.85

    def test_random_is_worst_or_tied(self, figure3_cell):
        final = {m: figure3_cell.curves[m][-1] for m in METHODS}
        assert final["random"] <= final["lif_gw"] + 0.05
        assert final["random"] <= final["solver"] + 0.05

    def test_values_relative_and_positive(self, figure3_cell):
        for method in METHODS:
            assert np.all(figure3_cell.curves[method] > 0)
            assert np.all(figure3_cell.curves[method] < 1.5)

    def test_full_grid_runner(self):
        config = Figure3Config(
            sizes=(12, 16),
            probabilities=(0.4,),
            n_graphs_per_cell=1,
            n_samples=32,
            n_solver_samples=16,
            seed=2,
            lif_gw=FAST_GW,
            lif_tr=FAST_TR,
        )
        cells = run_figure3(config=config, parallel=ParallelConfig(n_workers=1))
        assert len(cells) == 2
        assert {c.n_vertices for c in cells} == {12, 16}

    def test_reproducible(self):
        config = Figure3Config(
            sizes=(14,), probabilities=(0.3,), n_graphs_per_cell=1,
            n_samples=32, n_solver_samples=16, seed=3, lif_gw=FAST_GW, lif_tr=FAST_TR,
        )
        a = run_figure3_cell(14, 0.3, config=config, parallel=ParallelConfig(n_workers=1))
        b = run_figure3_cell(14, 0.3, config=config, parallel=ParallelConfig(n_workers=1))
        for method in METHODS:
            np.testing.assert_allclose(a.curves[method], b.curves[method])


class TestFigure4:
    @pytest.fixture(scope="class")
    def panel(self):
        config = Figure4Config(
            n_samples=64, n_solver_samples=32, seed=4, lif_gw=FAST_GW, lif_tr=FAST_TR
        )
        graph = erdos_renyi(24, 0.3, seed=5, name="toy_panel")
        return run_figure4_panel(graph, config=config)

    def test_panel_structure(self, panel):
        assert set(panel.curves.keys()) == set(METHODS)
        assert panel.graph_name == "toy_panel"
        assert panel.solver_best_weight > 0

    def test_best_weights_ordering(self, panel):
        assert panel.best_weights["solver"] >= panel.best_weights["random"] * 0.95

    def test_panel_by_registry_name(self):
        config = Figure4Config(
            n_samples=32, n_solver_samples=16, seed=6, lif_gw=FAST_GW, lif_tr=FAST_TR
        )
        panel = run_figure4_panel("soc-dolphins", config=config)
        assert panel.graph_name == "soc-dolphins"
        assert panel.n_vertices == 62

    def test_run_figure4_subset(self):
        config = Figure4Config(
            n_samples=32, n_solver_samples=16, seed=7, lif_gw=FAST_GW, lif_tr=FAST_TR
        )
        panels = run_figure4(["road-chesapeake", "eco-stmarks"], config=config)
        assert [p.graph_name for p in panels] == ["road-chesapeake", "eco-stmarks"]


class TestTable1:
    @pytest.fixture(scope="class")
    def row(self):
        config = Table1Config(
            n_samples=64, n_solver_samples=32, n_random_samples=64, seed=8,
            lif_gw=FAST_GW, lif_tr=FAST_TR,
        )
        return run_table1_row("soc-dolphins", config=config)

    def test_row_fields(self, row):
        assert row.graph_name == "soc-dolphins"
        assert set(row.measured.keys()) == {"lif_gw", "lif_tr", "solver", "random"}
        assert row.paper["solver"] == 122  # published Table I value
        assert row.is_surrogate

    def test_measured_values_bounded(self, row):
        for value in row.measured.values():
            assert 0 <= value

    def test_solver_beats_or_ties_random(self, row):
        assert row.measured["solver"] >= row.measured["random"] * 0.9

    def test_row_from_graph_object(self):
        config = Table1Config(
            n_samples=32, n_solver_samples=16, n_random_samples=32, seed=9,
            lif_gw=FAST_GW, lif_tr=FAST_TR,
        )
        graph = erdos_renyi(20, 0.3, seed=10, name="custom")
        row = run_table1_row(graph, config=config)
        assert row.graph_name == "custom"
        assert row.paper == {}
        assert not row.is_surrogate

    def test_run_table1_subset(self):
        config = Table1Config(
            n_samples=32, n_solver_samples=16, n_random_samples=32, seed=11,
            lif_gw=FAST_GW, lif_tr=FAST_TR,
        )
        rows = run_table1(["road-chesapeake"], config=config)
        assert len(rows) == 1
        assert rows[0].graph_name == "road-chesapeake"
