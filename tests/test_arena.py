"""Tests for the solver arena (repro.arena): suites, routing, leaderboards."""

import dataclasses
import json

import numpy as np
import pytest

from repro.arena import (
    ArenaBudget,
    ArenaEntry,
    ArenaResult,
    GraphSuite,
    build_suite,
    get_suite,
    list_suites,
    register_suite,
    run_arena,
)
from repro.arena.suite import SUITES
from repro.experiments import runner as runner_module
from repro.experiments.reporting import format_arena_leaderboard, format_arena_report
from repro.experiments.runner import load_results, save_results
from repro.graphs.generators import complete_bipartite, erdos_renyi
from repro.plotting.ascii import ascii_bar_chart, render_leaderboard
from repro.utils.validation import ValidationError


def _registered_test_solver(graph, n_samples=1, seed=None, **kwargs):
    """Module-level (hence picklable) solver for runtime-registration tests."""
    from repro.algorithms.trevisan import trevisan_spectral

    return trevisan_spectral(graph, seed=seed)


@pytest.fixture
def tiny_graphs():
    """Two tiny graphs: fast for every solver, bipartite one has known optimum."""
    return [
        erdos_renyi(12, 0.4, seed=3, name="tiny-er"),
        complete_bipartite(4, 5, name="tiny-k45"),
    ]


class TestArenaBudget:
    def test_defaults_valid(self):
        budget = ArenaBudget()
        assert budget.n_trials >= 1 and budget.n_samples >= 1

    @pytest.mark.parametrize("kwargs", [
        {"n_trials": 0},
        {"n_samples": 0},
        {"max_seconds": 0.0},
        {"max_seconds": -1.0},
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            ArenaBudget(**kwargs)


class TestSuites:
    def test_builtin_suites_registered(self):
        for key in ("er-small", "er-medium", "structured-small",
                    "powerlaw-small", "empirical-small"):
            assert key in list_suites()

    def test_build_is_deterministic_in_seed(self):
        a = build_suite("er-small", seed=7)
        b = build_suite("er-small", seed=7)
        assert [g.name for g in a] == [g.name for g in b]
        for ga, gb in zip(a, b):
            np.testing.assert_array_equal(ga.edges, gb.edges)

    def test_different_seed_different_graphs(self):
        a = build_suite("er-small", seed=0)
        b = build_suite("er-small", seed=99)
        assert any(ga.n_edges != gb.n_edges for ga, gb in zip(a, b))

    def test_unknown_suite_lists_available(self):
        with pytest.raises(ValidationError, match="available"):
            get_suite("not-a-suite")

    def test_register_suite_collision_raises(self):
        with pytest.raises(ValidationError, match="already registered"):
            register_suite(GraphSuite("er-small", "dup", lambda seed: []))

    def test_register_and_build_custom_suite(self):
        suite = GraphSuite("_test-suite", "one triangle",
                           lambda seed: [erdos_renyi(6, 0.5, seed=seed)])
        try:
            register_suite(suite)
            graphs = build_suite("_test-suite", seed=1)
            assert len(graphs) == 1 and graphs[0].n_vertices == 6
        finally:
            SUITES.pop("_test-suite", None)

    def test_empty_suite_rejected(self):
        suite = GraphSuite("_empty", "builds nothing", lambda seed: [])
        with pytest.raises(ValidationError, match="empty"):
            suite.build(0)

    def test_structured_suite_has_known_optima(self):
        for graph in build_suite("structured-small", seed=0):
            # All three constructions are bipartite: max cut = all edges.
            assert graph.total_weight > 0


class TestRunArenaSequential:
    def test_basic_shape_and_ratios(self, tiny_graphs):
        result = run_arena(["random", "trevisan"], suite=tiny_graphs,
                           budget=ArenaBudget(n_trials=2, n_samples=16), seed=0)
        assert result.suite == "custom"
        assert result.solvers == ("random", "trevisan")
        assert len(result.entries) == 4  # 2 solvers x 2 graphs
        for graph_name in result.graph_names:
            ratios = [e.cut_ratio for e in result.entries_for_graph(graph_name)]
            assert max(ratios) == pytest.approx(1.0)
            assert all(0.0 <= r <= 1.0 + 1e-12 for r in ratios)

    def test_deterministic_solver_runs_single_trial(self, tiny_graphs):
        result = run_arena(["trevisan"], suite=tiny_graphs,
                           budget=ArenaBudget(n_trials=5, n_samples=16), seed=0)
        for entry in result.entries:
            assert entry.n_trials == 1
            assert entry.deterministic
            # budget semantics "ignored" -> no samples credited
            assert entry.n_samples == 0
            assert entry.samples_per_second == 0.0

    def test_reproducible_across_runs(self, tiny_graphs):
        kwargs = dict(suite=tiny_graphs, budget=ArenaBudget(n_trials=3, n_samples=16),
                      seed=42)
        a = run_arena(["random", "annealing"], **kwargs)
        b = run_arena(["random", "annealing"], **kwargs)
        for ea, eb in zip(a.entries, b.entries):
            assert ea.best_weight == eb.best_weight
            assert ea.mean_weight == eb.mean_weight

    def test_alias_duplicate_rejected(self, tiny_graphs):
        with pytest.raises(ValidationError, match="more than once"):
            run_arena(["gw", "solver"], suite=tiny_graphs)

    def test_empty_solver_list_rejected(self, tiny_graphs):
        with pytest.raises(ValidationError):
            run_arena([], suite=tiny_graphs)

    def test_unknown_solver_rejected(self, tiny_graphs):
        with pytest.raises(ValidationError, match="unknown solver"):
            run_arena(["not_a_method"], suite=tiny_graphs)

    def test_max_seconds_truncates_trials(self, tiny_graphs):
        result = run_arena(
            ["annealing"], suite=tiny_graphs[:1],
            budget=ArenaBudget(n_trials=6, n_samples=16, max_seconds=1e-9),
            seed=0,
        )
        entry = result.entries[0]
        # The first trial always completes; the cap stops the rest.
        assert entry.n_trials == 1
        assert entry.metadata.get("budget_truncated") is True

    def test_duplicate_graph_names_rejected(self):
        # Ratios/reports are keyed by graph name; duplicates would merge
        # distinct graphs' results silently.
        graphs = [erdos_renyi(10, 0.4, seed=1), erdos_renyi(10, 0.4, seed=2)]
        assert graphs[0].name == graphs[1].name
        with pytest.raises(ValidationError, match="unique names"):
            run_arena(["random"], suite=graphs, seed=0)

    def test_runtime_registered_solver_runs(self, tiny_graphs):
        from repro.algorithms.registry import SOLVER_SPECS, SOLVERS, SolverSpec, register_solver

        spec = SolverSpec(key="_test_arena_solver", fn=_registered_test_solver,
                          deterministic=True, budget="ignored")
        try:
            register_solver(spec)
            result = run_arena(["_test_arena_solver"], suite=tiny_graphs, seed=0)
            assert len(result.entries) == 2
        finally:
            SOLVER_SPECS.pop("_test_arena_solver", None)
            SOLVERS.pop("_test_arena_solver", None)

    def test_known_optimum_on_bipartite_graph(self):
        graph = complete_bipartite(5, 6, name="k56")
        result = run_arena(["trevisan"], suite=[graph], seed=0)
        assert result.entries[0].best_weight == pytest.approx(30.0)


class TestRunArenaEngineRouting:
    def test_batchable_solver_uses_engine_path(self, tiny_graphs, monkeypatch):
        calls = []
        real = runner_module.run_circuit_trials

        def spy(*args, **kwargs):
            calls.append(kwargs)
            return real(*args, **kwargs)

        monkeypatch.setattr(runner_module, "run_circuit_trials", spy)
        result = run_arena(["lif_tr", "random"], suite=tiny_graphs[:1],
                           budget=ArenaBudget(n_trials=2, n_samples=16), seed=0)
        # One engine dispatch per (batchable solver, graph); random never routes there.
        assert len(calls) == 1
        assert calls[0]["circuit"] == "lif_tr"
        assert calls[0]["n_trials"] == 2
        by_solver = {e.solver: e for e in result.entries}
        assert by_solver["lif_tr"].used_engine
        assert by_solver["lif_tr"].backend in ("dense", "sparse")
        assert by_solver["lif_tr"].metadata["n_rounds"] == 16
        assert not by_solver["random"].used_engine
        assert by_solver["random"].backend == ""

    def test_engine_and_sequential_paths_agree(self, tiny_graphs):
        # The shared seeding contract makes use_engine a pure execution detail.
        kwargs = dict(suite=tiny_graphs[:1],
                      budget=ArenaBudget(n_trials=2, n_samples=16), seed=5)
        engine = run_arena(["lif_tr"], use_engine=True, **kwargs)
        sequential = run_arena(["lif_tr"], use_engine=False, **kwargs)
        assert not sequential.entries[0].used_engine
        assert engine.entries[0].best_weight == pytest.approx(
            sequential.entries[0].best_weight)
        assert engine.entries[0].mean_weight == pytest.approx(
            sequential.entries[0].mean_weight)


class TestArenaResult:
    @pytest.fixture
    def result(self, tiny_graphs):
        return run_arena(["random", "trevisan"], suite=tiny_graphs,
                         budget=ArenaBudget(n_trials=2, n_samples=16), seed=0)

    def test_aggregate_sorted_best_first(self, result):
        rows = result.aggregate()
        assert [row["solver"] for row in rows]
        ratios = [row["mean_ratio"] for row in rows]
        assert ratios == sorted(ratios, reverse=True)
        assert result.winner() == rows[0]["solver"]

    def test_entry_accessors(self, result):
        assert len(result.entries_for_solver("random")) == 2
        assert len(result.entries_for_graph("tiny-er")) == 2
        assert result.entries_for_solver("nope") == []

    def test_report_formatting(self, result):
        report = format_arena_report(result)
        assert "Arena leaderboard" in report
        assert "tiny-er" in report and "tiny-k45" in report
        assert "sequential" in report
        leaderboard = format_arena_leaderboard(result)
        assert "mean ratio" in leaderboard

    def test_render_leaderboard_bar_chart(self, result):
        chart = render_leaderboard(result)
        assert "#" in chart
        assert "mean cut ratio" in chart

    def test_save_and_reload_json(self, result, tmp_path):
        path = tmp_path / "arena.json"
        save_results(path, "compare", result.entries,
                     config={"suite": result.suite})
        record = load_results(path)
        assert record.experiment == "compare"
        assert record.result_type() == "ArenaEntry"
        assert len(record.results) == len(result.entries)
        reloaded = record.results[0]
        assert reloaded["solver"] == result.entries[0].solver
        assert reloaded["best_weight"] == pytest.approx(result.entries[0].best_weight)
        # File is plain JSON: a fresh parse sees the same payload.
        assert json.loads(path.read_text())["experiment"] == "compare"

    @staticmethod
    def _entry(solver, graph_name, cut_ratio, elapsed_seconds, wins_weight=2.0):
        return ArenaEntry(
            solver=solver, graph_name=graph_name, n_vertices=4, n_edges=4,
            total_weight=4.0, best_weight=wins_weight, mean_weight=wins_weight,
            cut_ratio=cut_ratio, n_trials=1, n_samples=8,
            elapsed_seconds=elapsed_seconds, samples_per_second=0.0,
            used_engine=False,
        )

    def test_tied_ratios_rank_deterministically(self):
        """Regression: aggregate ties must not break on wall-clock timings.

        Two solvers with identical mean ratios and win counts used to be
        ordered by elapsed_seconds, so the leaderboard (and ``winner()``)
        flapped between runs.  Ties now fall through to the solver name.
        """
        def build(elapsed_b, elapsed_z):
            entries = [
                self._entry("zeta", "g1", 1.0, elapsed_z),
                self._entry("beta", "g1", 1.0, elapsed_b),
            ]
            return ArenaResult(
                suite="custom", solvers=("zeta", "beta"), graph_names=("g1",),
                n_trials=1, n_samples=8, seed=0, entries=entries,
            )

        fast_beta = build(elapsed_b=0.001, elapsed_z=9.0)
        slow_beta = build(elapsed_b=9.0, elapsed_z=0.001)
        assert [r["solver"] for r in fast_beta.aggregate()] == ["beta", "zeta"]
        assert [r["solver"] for r in slow_beta.aggregate()] == ["beta", "zeta"]
        assert fast_beta.winner() == slow_beta.winner() == "beta"

    def test_tied_ratio_breaks_on_wins_before_name(self):
        entries = [
            # "alpha" and "zed" share the same mean ratio (0.5), but zed has
            # an outright per-graph win so it must rank first despite its name.
            self._entry("zed", "g1", 1.0, 5.0),
            self._entry("zed", "g2", 0.0, 5.0, wins_weight=0.0),
            self._entry("alpha", "g1", 0.5, 0.001),
            self._entry("alpha", "g2", 0.5, 0.001),
        ]
        result = ArenaResult(
            suite="custom", solvers=("zed", "alpha"), graph_names=("g1", "g2"),
            n_trials=1, n_samples=8, seed=0, entries=entries,
        )
        rows = result.aggregate()
        assert [r["solver"] for r in rows] == ["zed", "alpha"]
        assert rows[0]["wins"] == 1 and rows[1]["wins"] == 0


class TestAsciiBarChart:
    def test_scales_to_peak(self):
        chart = ascii_bar_chart(["a", "bb"], [1.0, 2.0], width=10)
        lines = chart.splitlines()
        assert lines[0].endswith("1.000") and "#" * 5 in lines[0]
        assert "#" * 10 in lines[1]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValidationError):
            ascii_bar_chart(["a"], [1.0, 2.0])

    def test_negative_values_rejected(self):
        with pytest.raises(ValidationError):
            ascii_bar_chart(["a"], [-1.0])


class TestRunnerRegistration:
    def test_arena_entry_registered_as_result_type(self):
        entry_fields = {f.name for f in dataclasses.fields(ArenaEntry)}
        assert "cut_ratio" in entry_fields
        jsonable = runner_module.results_to_jsonable([
            ArenaEntry(
                solver="random", graph_name="g", n_vertices=3, n_edges=3,
                total_weight=3.0, best_weight=2.0, mean_weight=2.0,
                cut_ratio=1.0, n_trials=1, n_samples=8, elapsed_seconds=0.1,
                samples_per_second=80.0, used_engine=False,
            )
        ])
        assert jsonable[0]["__type__"] == "ArenaEntry"

    def test_register_result_type_rejects_non_dataclass(self):
        with pytest.raises(ValidationError):
            runner_module.register_result_type(int)
