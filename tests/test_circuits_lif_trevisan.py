"""Tests for the LIF-Trevisan circuit."""

import numpy as np
import pytest

from repro.circuits.config import LIFTrevisanConfig
from repro.circuits.lif_trevisan import LIFTrevisanCircuit
from repro.cuts.cut import cut_weight
from repro.cuts.exact import exact_maxcut_value
from repro.cuts.random_cut import random_cuts_batch
from repro.devices.bernoulli import FairCoinPool
from repro.graphs.generators import complete_bipartite, erdos_renyi
from repro.graphs.graph import Graph
from repro.spectral.trevisan import trevisan_simple_spectral
from repro.utils.validation import ValidationError


class TestConstruction:
    def test_weights_are_trevisan_matrix(self, small_er_graph):
        circuit = LIFTrevisanCircuit(small_er_graph)
        np.testing.assert_allclose(circuit.weights, small_er_graph.trevisan_matrix())

    def test_weight_scale(self, small_er_graph):
        config = LIFTrevisanConfig(weight_scale=2.5)
        circuit = LIFTrevisanCircuit(small_er_graph, config=config)
        np.testing.assert_allclose(circuit.weights, 2.5 * small_er_graph.trevisan_matrix())

    def test_one_device_per_vertex(self, small_er_graph):
        circuit = LIFTrevisanCircuit(small_er_graph)
        assert circuit.build_device_pool(0).n_devices == small_er_graph.n_vertices

    def test_rejects_empty_graph(self):
        with pytest.raises(ValidationError):
            LIFTrevisanCircuit(Graph(0))

    def test_bad_device_pool_rejected(self, small_er_graph):
        factory = lambda n, rng: FairCoinPool(max(1, n - 1), seed=rng)  # noqa: E731
        circuit = LIFTrevisanCircuit(small_er_graph, device_pool_factory=factory)
        with pytest.raises(ValidationError):
            circuit.build_device_pool(0)


class TestSampling:
    def test_result_shapes(self, small_er_graph):
        circuit = LIFTrevisanCircuit(small_er_graph)
        result = circuit.sample_cuts(32, seed=1)
        assert result.n_samples == 32
        assert result.trajectory.weights.shape == (32,)

    def test_best_weight_consistent(self, small_er_graph):
        circuit = LIFTrevisanCircuit(small_er_graph)
        result = circuit.sample_cuts(16, seed=2)
        assert result.best_weight == pytest.approx(
            cut_weight(small_er_graph, result.best_cut.assignment)
        )

    def test_requires_positive_samples(self, small_er_graph):
        with pytest.raises(ValidationError):
            LIFTrevisanCircuit(small_er_graph).sample_cuts(0)

    def test_reproducible(self, small_er_graph):
        circuit = LIFTrevisanCircuit(small_er_graph)
        a = circuit.sample_cuts(16, seed=3).trajectory.weights
        b = circuit.sample_cuts(16, seed=3).trajectory.weights
        np.testing.assert_array_equal(a, b)

    def test_metadata_contains_plasticity_state(self, small_er_graph):
        result = LIFTrevisanCircuit(small_er_graph).sample_cuts(8, seed=4)
        weights = result.metadata["final_plasticity_weights"]
        assert weights.shape == (small_er_graph.n_vertices,)
        assert result.metadata["n_plasticity_updates"] > 0

    def test_steps_accounting(self, small_er_graph):
        config = LIFTrevisanConfig(burn_in_steps=50, sample_interval=5)
        result = LIFTrevisanCircuit(small_er_graph, config=config).sample_cuts(10, seed=5)
        assert result.n_steps == 50 + 10 * 5


class TestSolutionQuality:
    def test_improves_over_samples(self):
        """The running best should improve as plasticity converges (Figure 3 shape)."""
        graph = erdos_renyi(40, 0.25, seed=10)
        result = LIFTrevisanCircuit(graph).sample_cuts(400, seed=11)
        running = result.trajectory.running_best()
        early = running[: 20].max()
        late = running[-1]
        assert late >= early

    def test_beats_mean_random_cut(self):
        graph = erdos_renyi(40, 0.25, seed=12)
        result = LIFTrevisanCircuit(graph).sample_cuts(500, seed=13)
        _, random_weights = random_cuts_batch(graph, 500, seed=14)
        assert result.best_weight > random_weights.mean()

    def test_approaches_software_trevisan(self):
        """With enough samples the circuit approaches the software spectral cut."""
        graph = erdos_renyi(30, 0.3, seed=15)
        software = trevisan_simple_spectral(graph).cut.weight
        result = LIFTrevisanCircuit(graph).sample_cuts(800, seed=16)
        assert result.best_weight >= 0.85 * software

    def test_bipartite_graph_good_cut(self):
        graph = complete_bipartite(7, 7)
        result = LIFTrevisanCircuit(graph).sample_cuts(600, seed=17)
        assert result.best_weight >= 0.8 * graph.total_weight

    def test_small_graph_near_optimum(self):
        graph = erdos_renyi(14, 0.5, seed=18)
        opt = exact_maxcut_value(graph)
        result = LIFTrevisanCircuit(graph).sample_cuts(800, seed=19)
        assert result.best_weight >= 0.8 * opt

    def test_plasticity_vector_tracks_minimum_eigenvector(self):
        """The learned weight vector should align with the Trevisan eigenvector."""
        graph = erdos_renyi(25, 0.35, seed=20)
        result = LIFTrevisanCircuit(graph).sample_cuts(1000, seed=21)
        learned = result.metadata["final_plasticity_weights"]
        learned = learned / np.linalg.norm(learned)
        eigenvector = trevisan_simple_spectral(graph).eigenvector
        eigenvector = eigenvector / np.linalg.norm(eigenvector)
        alignment = abs(float(learned @ eigenvector))
        assert alignment > 0.6
