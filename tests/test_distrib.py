"""Tests for sharded, resumable workload execution (``repro.distrib``).

The load-bearing contract: for **every** registered workload, a sharded run
merged back together equals the monolithic run — records and leaderboard —
for any shard count (modulo wall-clock timing metadata), and a killed run
resumes by re-executing only the shards whose checkpoints are missing.
"""

import dataclasses
import json
import os

import numpy as np
import pytest

from repro.distrib import (
    CheckpointStore,
    ShardCheckpoint,
    fingerprint,
    get_shard_adapter,
    merge_checkpoints,
    plan_shards,
    run_sharded,
)
from repro.engine.sampler import trial_seed_sequences
from repro.experiments.runner import load_results, save_results
from repro.utils.validation import ValidationError
from repro.workloads import (
    Budget,
    ExecutionPolicy,
    GraphSource,
    Session,
    WorkloadSpec,
    get_workload,
)
from repro.workloads.executor import cell_units

#: Keys holding wall-clock measurements or shard bookkeeping — never compared.
_TIMING_KEYS = {
    "elapsed_seconds",
    "arena_elapsed_seconds",
    "engine_elapsed_seconds",
    "shard_elapsed_seconds",
    "samples_per_second",
    "warm_seconds",
    "cold_seconds",
    "n_unit_blocks",
    "distrib",
}

#: Tiny-budget parameters per workload for the determinism matrix.
WORKLOAD_PARAMS = {
    "arena": dict(
        solvers=("lif_tr", "random", "trevisan"), suite="structured-small",
        trials=2, samples=8, seed=0,
    ),
    "figure3": dict(
        sizes=(16,), probabilities=(0.3,), trials=2, samples=8, seed=0,
    ),
    "figure4": dict(graphs=("road-chesapeake",), samples=8, seed=0),
    "table1": dict(graphs=("road-chesapeake",), samples=8, seed=0),
    "ablation": dict(
        kind="learning-rate", vertices=12, samples=8, n_graphs=2, seed=0,
    ),
    "problems": dict(
        problem="2sat", solvers=("random", "annealing", "max2sat_gw"),
        trials=2, samples=8, seed=0,
    ),
    "evolving": dict(
        suite="er-small", steps=2, deltas=4, trials=2, samples=16, seed=0,
    ),
}


def _scrub(value):
    if isinstance(value, dict):
        return {k: _scrub(v) for k, v in value.items() if k not in _TIMING_KEYS}
    if isinstance(value, (list, tuple)):
        return [_scrub(v) for v in value]
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.floating, np.integer, np.bool_)):
        return value.item()
    return value


def _comparable_records(report):
    out = []
    for record in report.records:
        fields = {
            f.name: getattr(record, f.name)
            for f in dataclasses.fields(record)
        }
        out.append(_scrub(fields))
    return out


@pytest.fixture(scope="module")
def monolithic():
    """One monolithic run per workload, shared by the shard-count matrix."""
    return {
        name: Session.from_workload(name, **params).run()
        for name, params in WORKLOAD_PARAMS.items()
    }


class TestShardDeterminism:
    # 4 is the acceptance-pinned shard count; {1, 2, 7} cover the degenerate,
    # even, and more-shards-than-cells splits.
    @pytest.mark.parametrize("name", sorted(WORKLOAD_PARAMS))
    @pytest.mark.parametrize("shards", [1, 2, 4, 7])
    def test_merged_equals_monolithic(self, name, shards, monolithic, tmp_path):
        # shards=1 would normally shortcut to the monolithic path; a
        # checkpoint_dir forces it through the sharded machinery so the
        # single-shard split-and-merge is genuinely exercised too.
        checkpoint_dir = str(tmp_path) if shards == 1 else None
        sharded = Session.from_workload(name, **WORKLOAD_PARAMS[name]).run(
            shards=shards, checkpoint_dir=checkpoint_dir
        )
        mono = monolithic[name]
        assert _comparable_records(sharded) == _comparable_records(mono)
        assert _scrub(sharded.leaderboard) == _scrub(mono.leaderboard)
        assert sharded.metadata["distrib"]["n_shards"] == shards

    def test_checkpointed_run_equals_in_memory(self, tmp_path, monolithic):
        """Payloads that round-trip through checkpoint files stay identical."""
        report = Session.from_workload("arena", **WORKLOAD_PARAMS["arena"]).run(
            shards=3, checkpoint_dir=str(tmp_path)
        )
        assert _comparable_records(report) == _comparable_records(
            monolithic["arena"]
        )
        files = sorted(os.listdir(tmp_path))
        assert files == [
            "manifest.json", "shard-0000.json", "shard-0001.json",
            "shard-0002.json",
        ]


class TestPlan:
    def _spec(self, **overrides):
        base = dict(
            workload="adhoc",
            graphs=GraphSource.from_suite("er-small"),
            solvers=("random",),
            budget=Budget(n_trials=4, n_samples=8),
            policy=ExecutionPolicy(mode="sequential"),
            seed=0,
        )
        base.update(overrides)
        return WorkloadSpec(**base)

    def test_round_robin_assignment_covers_all_units(self):
        plan = plan_shards(self._spec(), 2)
        assert sorted(j for a in plan.assignments for j in a) == list(
            range(len(plan.units))
        )
        assert plan.assignments[0] == tuple(range(0, len(plan.units), 2))

    def test_more_shards_than_cells_splits_trial_ranges(self):
        # 3 er-small graphs x 1 solver = 3 cells; 7 shards forces trial splits.
        spec = self._spec()
        units = cell_units(spec, n_shards=7)
        assert len(units) > 3
        by_cell = {}
        for g, key, lo, hi in units:
            by_cell.setdefault((g, key), []).append((lo, hi))
        for ranges in by_cell.values():
            ranges.sort()
            assert ranges[0][0] == 0 and ranges[-1][1] == 4
            for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
                assert hi == lo  # contiguous, non-overlapping

    def test_mixed_solver_split_still_covers_every_shard(self):
        # Deterministic cells cannot absorb extra shards — the stochastic
        # cells alone must cover the deficit.
        spec = self._spec(
            graphs=GraphSource.from_suite("structured-small"),
            solvers=("trevisan", "random"),
            budget=Budget(n_trials=16, n_samples=8),
        )
        # 6 cells (3 deterministic + 3 stochastic), 12 shards requested.
        units = cell_units(spec, n_shards=12)
        assert len(units) >= 12
        plan = plan_shards(spec, 12)
        assert all(len(a) > 0 for a in plan.assignments)

    def test_deterministic_solvers_never_split(self):
        spec = self._spec(solvers=("trevisan",))
        units = cell_units(spec, n_shards=9)
        assert all(lo == 0 and hi == 1 for (_, _, lo, hi) in units)

    def test_capped_budgets_never_split(self):
        spec = self._spec(budget=Budget(n_trials=4, n_samples=8, max_seconds=60))
        assert len(cell_units(spec, n_shards=9)) == 3

    def test_plan_is_deterministic_and_fingerprinted(self):
        spec = self._spec()
        a, b = plan_shards(spec, 3), plan_shards(spec, 3)
        assert a == b
        assert a.fingerprint == fingerprint(spec, 3)
        assert plan_shards(spec, 4).fingerprint != a.fingerprint

    def test_invalid_shard_count(self):
        with pytest.raises(ValidationError):
            plan_shards(self._spec(), 0)

    def test_custom_executor_without_adapter_is_rejected(self):
        workload = get_workload("figure4")
        spec = self._spec(workload="not-registered-figure4")
        with pytest.raises(ValidationError, match="no shard adapter"):
            get_shard_adapter(spec, workload)


class TestTrialOffset:
    def test_offset_blocks_reproduce_the_unsplit_seed_stream(self):
        full = trial_seed_sequences(1234, 5)
        split = trial_seed_sequences(1234, 2) + trial_seed_sequences(1234, 3, start=2)
        assert [s.spawn_key for s in split] == [s.spawn_key for s in full]
        assert all(s.entropy == 1234 for s in split)

    def test_negative_offset_rejected(self):
        with pytest.raises(ValidationError):
            trial_seed_sequences(0, 1, start=-1)


class TestResume:
    PARAMS = dict(solvers=("lif_tr", "random"), suite="structured-small",
                  trials=2, samples=8, seed=0)

    def _run(self, tmp_path, resume=False):
        return Session.from_workload("arena", **self.PARAMS).run(
            shards=3, checkpoint_dir=str(tmp_path), resume=resume
        )

    def test_resume_executes_only_missing_shards(self, tmp_path):
        first = self._run(tmp_path)
        os.unlink(tmp_path / "shard-0001.json")
        second = self._run(tmp_path, resume=True)
        distrib = second.metadata["distrib"]
        assert distrib["executed_shards"] == [1]
        assert distrib["resumed_shards"] == [0, 2]
        assert _comparable_records(second) == _comparable_records(first)
        assert _scrub(second.leaderboard) == _scrub(first.leaderboard)

    def test_corrupt_checkpoint_is_rerun_not_trusted(self, tmp_path):
        first = self._run(tmp_path)
        # Simulate the torn write atomic IO prevents: truncated JSON.
        (tmp_path / "shard-0002.json").write_text('{"experiment": "shard:are')
        second = self._run(tmp_path, resume=True)
        assert 2 in second.metadata["distrib"]["executed_shards"]
        assert _comparable_records(second) == _comparable_records(first)

    def test_malformed_checkpoint_fields_are_rerun_not_crashed(self, tmp_path):
        # Parseable record, but units is null — foreign/hand-edited schema.
        first = self._run(tmp_path)
        path = tmp_path / "shard-0001.json"
        payload = json.loads(path.read_text())
        payload["results"][0]["units"] = None
        path.write_text(json.dumps(payload))
        second = self._run(tmp_path, resume=True)
        assert second.metadata["distrib"]["executed_shards"] == [1]
        assert _comparable_records(second) == _comparable_records(first)

    def test_foreign_fingerprint_checkpoint_dir_is_rejected(self, tmp_path):
        self._run(tmp_path)
        other = dict(self.PARAMS, seed=1)
        with pytest.raises(ValidationError, match="different run"):
            Session.from_workload("arena", **other).run(
                shards=3, checkpoint_dir=str(tmp_path), resume=True
            )

    def test_resume_requires_checkpoint_dir(self):
        with pytest.raises(ValidationError, match="checkpoint_dir"):
            Session.from_workload("arena", **self.PARAMS).run(
                shards=2, resume=True
            )

    def test_merge_checkpoints_roundtrip_and_missing_shard_error(self, tmp_path):
        first = self._run(tmp_path)
        outcome, manifest = merge_checkpoints(str(tmp_path))
        assert manifest["workload"] == "arena"
        assert _scrub([dataclasses.asdict(e) for e in outcome.records]) == \
            _scrub([dataclasses.asdict(e) for e in first.records])
        os.unlink(tmp_path / "shard-0000.json")
        with pytest.raises(ValidationError, match=r"missing shard\(s\) \[0\]"):
            merge_checkpoints(str(tmp_path))

    def test_shard_files_are_registered_experiment_records(self, tmp_path):
        self._run(tmp_path)
        record = load_results(tmp_path / "shard-0000.json")
        assert record.experiment == "shard:arena"
        assert record.result_type() == "ShardCheckpoint"
        store = CheckpointStore(str(tmp_path))
        manifest = store.read_manifest()
        checkpoint = store.load_shard(0, manifest["fingerprint"])
        assert isinstance(checkpoint, ShardCheckpoint)
        assert len(checkpoint.units) == len(checkpoint.payloads)


class TestWorkerMode:
    """execute_single_shard: how a run actually spreads across processes."""

    PARAMS = dict(solvers=("lif_tr", "random"), suite="structured-small",
                  trials=2, samples=8, seed=0)

    def test_per_shard_workers_then_merge_equals_monolithic(self, tmp_path):
        from repro.distrib import execute_single_shard

        mono = Session.from_workload("arena", **self.PARAMS).run()
        session = Session.from_workload("arena", **self.PARAMS)
        statuses = [
            execute_single_shard(
                session.spec, 3, k, str(tmp_path), workload=session.workload
            )
            for k in range(3)
        ]
        assert [s["complete"] for s in statuses] == [False, False, True]
        assert statuses[1]["missing_shards"] == [2]
        outcome, _ = merge_checkpoints(str(tmp_path))
        mono_best = {(e.graph_name, e.solver): e.best_weight for e in mono.records}
        worker_best = {
            (e.graph_name, e.solver): e.best_weight for e in outcome.records
        }
        assert worker_best == mono_best

    def test_rerunning_a_completed_worker_shard_is_skipped(self, tmp_path):
        from repro.distrib import execute_single_shard

        session = Session.from_workload("arena", **self.PARAMS)
        first = execute_single_shard(
            session.spec, 2, 0, str(tmp_path), workload=session.workload
        )
        again = execute_single_shard(
            session.spec, 2, 0, str(tmp_path), workload=session.workload
        )
        assert first["skipped"] is False
        assert again["skipped"] is True

    def test_out_of_range_shard_index_rejected(self, tmp_path):
        from repro.distrib import execute_single_shard

        session = Session.from_workload("arena", **self.PARAMS)
        with pytest.raises(ValidationError, match="shard_index"):
            execute_single_shard(
                session.spec, 2, 5, str(tmp_path), workload=session.workload
            )


class TestAtomicSave:
    def test_interrupted_write_leaves_previous_file_intact(self, tmp_path, monkeypatch):
        target = tmp_path / "results.json"
        save_results(target, "demo", [], config={"generation": 1})
        import repro.experiments.runner as runner_module

        real_dump = json.dump

        def torn_dump(payload, handle, **kwargs):
            handle.write('{"experiment": "demo", "resu')
            handle.flush()
            raise RuntimeError("simulated crash mid-write")

        monkeypatch.setattr(runner_module.json, "dump", torn_dump)
        with pytest.raises(RuntimeError, match="simulated crash"):
            save_results(target, "demo", [], config={"generation": 2})
        monkeypatch.setattr(runner_module.json, "dump", real_dump)
        payload = json.loads(target.read_text())
        assert payload["config"] == {"generation": 1}
        assert [p for p in os.listdir(tmp_path) if ".tmp." in p] == []


class TestGraphCache:
    def test_overwritten_suite_is_not_served_from_cache(self):
        from repro.arena.suite import GraphSuite, SUITES, register_suite
        from repro.graphs.generators import erdos_renyi
        from repro.workloads.executor import build_spec_graphs

        key = "cache-probe-suite"
        try:
            register_suite(GraphSuite(
                key, "probe", lambda seed: [erdos_renyi(8, 0.5, seed=seed, name="a8")]
            ))
            spec = WorkloadSpec(
                workload="adhoc", graphs=GraphSource.from_suite(key),
                solvers=("random",), seed=0,
            )
            assert [g.name for g in build_spec_graphs(spec)] == ["a8"]
            register_suite(GraphSuite(
                key, "probe2",
                lambda seed: [erdos_renyi(10, 0.5, seed=seed, name="b10")],
            ), overwrite=True)
            assert [g.name for g in build_spec_graphs(spec)] == ["b10"]
        finally:
            SUITES.pop(key, None)

    def test_same_suite_is_cached_as_identical_objects(self):
        from repro.workloads.executor import build_spec_graphs

        spec = WorkloadSpec(
            workload="adhoc", graphs=GraphSource.from_suite("er-small"),
            solvers=("random",), seed=123,
        )
        first = build_spec_graphs(spec)
        second = build_spec_graphs(spec)
        assert all(a is b for a, b in zip(first, second))


class TestSpecRoundTrip:
    def test_from_dict_is_inverse_of_to_dict(self):
        spec = WorkloadSpec(
            workload="arena",
            graphs=GraphSource.erdos_renyi_grid((16, 20), (0.2,), per_cell=2),
            solvers=("lif_tr", "random"),
            budget=Budget(n_trials=3, n_samples=16, max_seconds=2.5),
            policy=ExecutionPolicy(mode="parallel", n_workers=2),
            seed=7,
            params={"suite": "er-grid", "flag": True},
        )
        rebuilt = WorkloadSpec.from_dict(spec.to_dict())
        assert rebuilt.to_dict() == spec.to_dict()
        assert fingerprint(rebuilt, 4) == fingerprint(spec, 4)

    def test_explicit_sources_are_not_persistable(self):
        from repro.graphs.generators import erdos_renyi

        spec = WorkloadSpec(
            workload="adhoc",
            graphs=GraphSource.explicit([erdos_renyi(8, 0.5, seed=0)]),
            solvers=("random",),
            seed=0,
        )
        with pytest.raises(ValidationError, match="explicit"):
            WorkloadSpec.from_dict(spec.to_dict())


class TestAdhocSpecs:
    def test_bare_spec_shards_through_generic_adapter(self):
        spec = WorkloadSpec(
            workload="adhoc-race",
            graphs=GraphSource.from_suite("structured-small"),
            solvers=("random", "trevisan"),
            budget=Budget(n_trials=3, n_samples=8),
            policy=ExecutionPolicy(mode="sequential"),
            seed=0,
        )
        mono = Session(spec).run()
        sharded_outcome = run_sharded(spec, 5)
        mono_best = {(e.graph_name, e.solver): e.best_weight for e in mono.records}
        shard_best = {
            (e.graph_name, e.solver): e.best_weight
            for e in sharded_outcome.records
        }
        assert mono_best == shard_best
