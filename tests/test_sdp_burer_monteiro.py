"""Tests for the Burer-Monteiro MAXCUT SDP solver."""

import numpy as np
import pytest

from repro.cuts.exact import exact_maxcut_value
from repro.graphs.generators import complete_bipartite, complete_graph, cycle_graph, erdos_renyi
from repro.graphs.graph import Graph
from repro.sdp.burer_monteiro import sdp_objective, solve_maxcut_sdp
from repro.sdp.manifold import is_on_manifold
from repro.utils.validation import ValidationError


class TestObjective:
    def test_zero_for_identical_vectors(self, triangle):
        W = np.tile(np.array([1.0, 0.0]), (3, 1))
        assert sdp_objective(triangle, W) == pytest.approx(0.0)

    def test_full_cut_for_antipodal_bipartite(self, small_bipartite):
        n_left = 3
        W = np.zeros((small_bipartite.n_vertices, 2))
        W[:n_left, 0] = 1.0
        W[n_left:, 0] = -1.0
        assert sdp_objective(small_bipartite, W) == pytest.approx(
            small_bipartite.total_weight
        )

    def test_matches_cut_value_for_spin_embedding(self, small_er_graph, rng):
        from repro.cuts.cut import cut_weight

        v = np.where(rng.random(small_er_graph.n_vertices) < 0.5, 1.0, -1.0)
        W = np.zeros((small_er_graph.n_vertices, 3))
        W[:, 0] = v
        assert sdp_objective(small_er_graph, W) == pytest.approx(
            cut_weight(small_er_graph, v.astype(int))
        )

    def test_wrong_shape_raises(self, triangle):
        with pytest.raises(ValidationError):
            sdp_objective(triangle, np.ones((5, 2)))

    def test_empty_graph(self, empty_graph):
        assert sdp_objective(empty_graph, np.ones((5, 2))) == 0.0


class TestSolver:
    def test_result_on_manifold(self, small_er_graph):
        result = solve_maxcut_sdp(small_er_graph, rank=4, seed=0)
        assert is_on_manifold(result.vectors)

    def test_objective_history_monotone(self, small_er_graph):
        result = solve_maxcut_sdp(small_er_graph, rank=4, seed=0)
        history = np.array(result.objective_history)
        assert np.all(np.diff(history) >= -1e-9)

    def test_objective_upper_bounds_maxcut(self, small_er_graph):
        # with a generous rank the BM solution reaches the SDP optimum >= OPT
        opt = exact_maxcut_value(small_er_graph)
        result = solve_maxcut_sdp(small_er_graph, rank=8, seed=1)
        assert result.objective >= opt - 1e-6

    def test_bipartite_reaches_total_weight(self, small_bipartite):
        result = solve_maxcut_sdp(small_bipartite, rank=4, seed=2)
        assert result.objective == pytest.approx(small_bipartite.total_weight, rel=1e-3)

    def test_triangle_sdp_value(self, triangle):
        # SDP value of K3 is 9/4 (vectors at 120 degrees)
        result = solve_maxcut_sdp(triangle, rank=3, seed=3)
        assert result.objective == pytest.approx(2.25, abs=1e-3)

    def test_five_cycle_sdp_value(self, five_cycle):
        # SDP value of C5 is (5/2)(1 + cos(pi/5)) ~ 4.5225
        result = solve_maxcut_sdp(five_cycle, rank=4, seed=4)
        expected = 2.5 * (1.0 + np.cos(np.pi / 5.0))
        assert result.objective == pytest.approx(expected, abs=1e-2)

    def test_gram_matrix_unit_diagonal_psd(self, small_er_graph):
        result = solve_maxcut_sdp(small_er_graph, rank=5, seed=5)
        X = result.gram_matrix
        np.testing.assert_allclose(np.diag(X), 1.0, atol=1e-9)
        eigenvalues = np.linalg.eigvalsh(X)
        assert eigenvalues.min() >= -1e-9

    def test_warm_start(self, small_er_graph):
        first = solve_maxcut_sdp(small_er_graph, rank=4, seed=6, max_iterations=20)
        warm = solve_maxcut_sdp(
            small_er_graph, rank=4, initial_vectors=first.vectors, max_iterations=500
        )
        assert warm.objective >= first.objective - 1e-9

    def test_warm_start_wrong_shape_raises(self, small_er_graph):
        with pytest.raises(ValidationError):
            solve_maxcut_sdp(small_er_graph, rank=4, initial_vectors=np.ones((3, 4)))

    def test_invalid_rank_raises(self, triangle):
        with pytest.raises(ValidationError):
            solve_maxcut_sdp(triangle, rank=0)

    def test_negative_iterations_raises(self, triangle):
        with pytest.raises(ValidationError):
            solve_maxcut_sdp(triangle, max_iterations=-1)

    def test_empty_graph_short_circuit(self, empty_graph):
        result = solve_maxcut_sdp(empty_graph, rank=3)
        assert result.objective == 0.0
        assert result.converged

    def test_zero_iterations(self, small_er_graph):
        result = solve_maxcut_sdp(small_er_graph, rank=4, max_iterations=0, seed=1)
        assert result.n_iterations == 0

    def test_reproducible_given_seed(self, small_er_graph):
        a = solve_maxcut_sdp(small_er_graph, rank=4, seed=42)
        b = solve_maxcut_sdp(small_er_graph, rank=4, seed=42)
        np.testing.assert_allclose(a.vectors, b.vectors)

    def test_rank4_close_to_high_rank(self):
        # the paper fixes rank 4; on modest graphs that already matches the SDP value
        g = erdos_renyi(25, 0.4, seed=7)
        low = solve_maxcut_sdp(g, rank=4, seed=8).objective
        high = solve_maxcut_sdp(g, rank=10, seed=9).objective
        assert low >= 0.97 * high
