"""Tests for the array-API seam (repro.engine.xp).

Covers spec parsing and resolution, the array-backend registry and probes,
the numpy identity adapter, the redesigned ``WeightBackend.for_graph``
selection API (including the explicit-override fix for small graphs), the
numpy path's bit-identity guarantee, and — when torch is installed — the
torch-CPU parity suite.  Torch/cupy tests skip cleanly where the optional
dependency is absent.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import (
    ArrayBackend,
    BackendSpec,
    DenseBackend,
    NumpyArrayBackend,
    ResolvedBackend,
    SolveRequest,
    SparseBackend,
    WeightBackend,
    get_array_backend,
    list_array_backends,
    parse_backend_spec,
    probe_array_backends,
    probe_weight_backends,
    register_array_backend,
    resolve_backend,
    sequential_solve,
    solve,
)
from repro.engine.backends import SPARSE_MIN_VERTICES
from repro.graphs.generators import erdos_renyi
from repro.utils.validation import ValidationError
from repro.workloads.spec import ExecutionPolicy

TORCH_AVAILABLE, TORCH_REASON = get_array_backend("torch").available()
needs_torch = pytest.mark.skipif(
    not TORCH_AVAILABLE, reason=f"torch unavailable: {TORCH_REASON}"
)


class TestParseBackendSpec:
    def test_none_and_auto_mean_full_auto(self):
        for spec in (None, "auto", "", "  AUTO  "):
            parsed = parse_backend_spec(spec)
            assert parsed == BackendSpec(array="auto", weight="auto")

    def test_bare_weight_name(self):
        assert parse_backend_spec("dense") == BackendSpec(weight="dense")
        assert parse_backend_spec("sparse") == BackendSpec(weight="sparse")

    def test_bare_array_name(self):
        assert parse_backend_spec("numpy") == BackendSpec(array="numpy")
        assert parse_backend_spec("torch") == BackendSpec(array="torch")

    def test_combined_form(self):
        parsed = parse_backend_spec("torch:dense")
        assert parsed == BackendSpec(array="torch", weight="dense")

    def test_partial_combined_forms(self):
        assert parse_backend_spec(":sparse") == BackendSpec(weight="sparse")
        assert parse_backend_spec("numpy:") == BackendSpec(array="numpy")

    def test_case_insensitive(self):
        assert parse_backend_spec("Torch:Dense") == BackendSpec(
            array="torch", weight="dense"
        )

    def test_backendspec_passthrough(self):
        spec = BackendSpec(array="numpy", weight="sparse")
        assert parse_backend_spec(spec) == spec

    def test_unknown_names_raise(self):
        for bad in ("bogus", "bogus:dense", "numpy:bogus", "torch:sparse:x"):
            with pytest.raises(ValidationError):
                parse_backend_spec(bad)

    def test_non_string_raises(self):
        with pytest.raises(ValidationError):
            parse_backend_spec(123)


class TestResolveBackend:
    def test_auto_resolves_to_numpy(self):
        resolved = resolve_backend("auto")
        assert resolved.array.name == "numpy"
        assert resolved.weight == "auto"

    def test_weight_only_spec_keeps_numpy_array(self):
        resolved = resolve_backend("sparse")
        assert resolved.array.name == "numpy"
        assert resolved.weight == "sparse"

    def test_resolved_backend_passes_through(self):
        resolved = ResolvedBackend(array=get_array_backend("numpy"), weight="dense")
        assert resolve_backend(resolved) is resolved

    def test_array_backend_instance_passes_through(self):
        resolved = resolve_backend(get_array_backend("numpy"))
        assert resolved.array.name == "numpy"
        assert resolved.weight == "auto"

    @pytest.mark.skipif(TORCH_AVAILABLE, reason="torch is installed here")
    def test_unavailable_backend_fails_with_reason(self):
        with pytest.raises(ValidationError, match="unavailable"):
            resolve_backend("torch")

    def test_describe_names_both_seams(self):
        resolved = resolve_backend("numpy:dense")
        assert resolved.describe == "numpy:dense"


class TestRegistry:
    def test_builtins_registered(self):
        assert {"numpy", "torch", "cupy"} <= set(list_array_backends())

    def test_unknown_name_raises(self):
        with pytest.raises(ValidationError):
            get_array_backend("no-such-array")

    def test_register_rejects_bad_names(self):
        for bad in ("", "auto", "with:colon"):
            backend = NumpyArrayBackend()
            backend.name = bad
            with pytest.raises(ValidationError):
                register_array_backend(backend)

    def test_register_rejects_duplicates_without_overwrite(self):
        with pytest.raises(ValidationError):
            register_array_backend(NumpyArrayBackend())

    def test_probes_are_json_safe_reports(self):
        probes = {p["name"]: p for p in probe_array_backends()}
        assert probes["numpy"]["available"] is True
        assert probes["numpy"]["device"] == "cpu"
        for probe in probes.values():
            assert set(probe) == {"name", "available", "reason", "device"}
        weight_probes = {p["name"]: p for p in probe_weight_backends()}
        assert {"dense", "sparse"} <= set(weight_probes)


class TestNumpyIdentityAdapter:
    def test_asarray_is_identity_for_ndarrays(self):
        xp = get_array_backend("numpy")
        array = np.arange(6.0)
        assert xp.asarray(array) is array
        assert xp.to_numpy(array) is array

    def test_kernels_match_module_level_numpy(self):
        xp = get_array_backend("numpy")
        rng = np.random.default_rng(0)
        a = rng.standard_normal((4, 5))
        b = rng.standard_normal((5, 3))
        assert np.array_equal(xp.matmul(a, b), np.matmul(a, b))
        out = np.empty((4, 3))
        assert xp.matmul(a, b, out=out) is out
        assert np.array_equal(out, np.matmul(a, b))
        mask = a > 0
        assert np.array_equal(xp.where(mask, 1, -1), np.where(mask, 1, -1))
        assert np.array_equal(
            xp.count_nonzero(mask, axis=1), np.count_nonzero(mask, axis=1)
        )
        assert xp.astype(a, "float32").dtype == np.float32
        assert np.array_equal(xp.zeros((2, 2), "int8"), np.zeros((2, 2), np.int8))


class TestForGraph:
    def test_explicit_sparse_overrides_small_graph_heuristic(self):
        # The fix: "--backend sparse" must be honoured even on graphs the
        # auto heuristic would route dense (small and/or dense ones).
        graph = erdos_renyi(16, 0.5, seed=0)
        assert graph.n_vertices < SPARSE_MIN_VERTICES
        weights = np.eye(graph.n_vertices)
        backend = WeightBackend.for_graph(
            graph, weights, policy="sparse",
            sparse_weights=lambda: weights,
        )
        assert isinstance(backend, SparseBackend)

    def test_execution_policy_object_is_a_valid_policy(self):
        graph = erdos_renyi(16, 0.5, seed=0)
        weights = np.eye(graph.n_vertices)
        policy = ExecutionPolicy(mode="auto", backend="sparse")
        backend = WeightBackend.for_graph(
            graph, weights, policy=policy, sparse_weights=lambda: weights
        )
        assert isinstance(backend, SparseBackend)

    def test_auto_routes_sparse_only_for_large_low_density(self):
        small = erdos_renyi(16, 0.5, seed=0)
        dense_backend = WeightBackend.for_graph(
            small, np.eye(16), policy="auto", sparse_weights=lambda: np.eye(16)
        )
        assert isinstance(dense_backend, DenseBackend)

    def test_backend_instances_carry_their_array_backend(self):
        graph = erdos_renyi(16, 0.5, seed=0)
        backend = WeightBackend.for_graph(graph, np.eye(16), policy="dense")
        assert backend.array is not None
        assert backend.array.name == "numpy"

    def test_engine_sparse_spec_end_to_end_on_small_graph(self):
        # Same override through the full engine path: a SolveRequest naming
        # sparse must report the sparse backend even under the size floor.
        graph = erdos_renyi(24, 0.5, seed=1)
        result = solve(SolveRequest(
            circuit="lif_tr", graph=graph, n_trials=2, n_samples=4,
            seed=0, backend="sparse",
        ))
        assert result.backend_name == "sparse"


class TestNumpyBitIdentity:
    def test_numpy_spec_bit_identical_to_sequential(self):
        graph = erdos_renyi(30, 0.4, seed=2)
        request = SolveRequest(
            circuit="lif_tr", graph=graph, n_trials=3, n_samples=6,
            seed=11, backend="numpy:dense",
        )
        engine = solve(request)
        reference = sequential_solve(request)
        assert np.array_equal(engine.trajectories, reference.trajectories)
        assert np.array_equal(
            engine.trial_best_weights, reference.trial_best_weights
        )
        assert np.array_equal(
            engine.trial_best_assignments, reference.trial_best_assignments
        )
        assert engine.metadata["array_backend"] == "numpy"
        assert engine.metadata["array_device"] == "cpu"

    def test_numpy_spec_equals_default_auto_run(self):
        graph = erdos_renyi(30, 0.4, seed=3)
        common = dict(
            circuit="lif_tr", graph=graph, n_trials=2, n_samples=5, seed=4
        )
        auto = solve(SolveRequest(backend="auto", **common))
        explicit = solve(SolveRequest(backend="numpy:dense", **common))
        assert np.array_equal(auto.trajectories, explicit.trajectories)
        assert np.array_equal(
            auto.trial_best_assignments, explicit.trial_best_assignments
        )


@needs_torch
class TestTorchParity:
    def _results(self, circuit, graph, **kwargs):
        common = dict(
            circuit=circuit, graph=graph, n_trials=3, n_samples=6, seed=9,
            **kwargs,
        )
        host = solve(SolveRequest(backend="numpy:dense", **common))
        accel = solve(SolveRequest(backend="torch:dense", **common))
        return host, accel

    def test_torch_dense_allclose_to_numpy(self):
        graph = erdos_renyi(28, 0.4, seed=5)
        host, accel = self._results("lif_tr", graph)
        assert accel.metadata["array_backend"] == "torch"
        np.testing.assert_allclose(
            accel.trajectories, host.trajectories, rtol=1e-9, atol=1e-9
        )
        np.testing.assert_allclose(
            accel.trial_best_weights, host.trial_best_weights,
            rtol=1e-9, atol=1e-9,
        )

    def test_torch_seeds_identical_to_numpy_host_sampling(self):
        # The RNG bridge: both runs must consume the same host random
        # numbers, so the ±1 read-out assignments agree exactly unless a
        # membrane potential sits within round-off of the threshold.
        graph = erdos_renyi(20, 0.5, seed=6)
        host, accel = self._results("lif_tr", graph)
        assert np.array_equal(
            accel.trial_best_assignments, host.trial_best_assignments
        )

    def test_torch_sparse_combination_is_rejected(self):
        graph = erdos_renyi(20, 0.5, seed=7)
        with pytest.raises(ValidationError):
            solve(SolveRequest(
                circuit="lif_tr", graph=graph, n_trials=1, n_samples=2,
                seed=0, backend="torch:sparse",
            ))
